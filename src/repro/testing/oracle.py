"""Brute-force differential oracle.

The deciders in :mod:`repro.sat` implement the paper's theorems; this
module implements *none* of them.  It enumerates small DTD-conforming
trees directly from the grammar (:func:`iter_small_trees`), evaluates
the query on each with the reference semantics
(:func:`repro.xpath.semantics.evaluate` via ``satisfies``), and declares
satisfiability by exhibition: a query is SAT iff some enumerated tree
models it.  Every enumerated tree is re-checked with
:func:`repro.xmltree.validate.conforms`, so an enumeration bug cannot
silently bias the oracle toward SAT.

:func:`cross_check` runs the oracle against **every** registered decider
that accepts a ``(query, DTD)`` case — plus the full ``decide()``
dispatch path — and reports disagreements:

* decider ``SAT``  but no tree within the oracle bound models the query;
* decider ``UNSAT`` but the oracle exhibits a witness;
* decider ``SAT`` whose claimed witness fails to conform or to satisfy
  the (original, un-rewritten) query.

``unknown`` verdicts and declines are recorded but are not
disagreements.  The oracle is bounded, so the first check is only valid
when the bound covers the minimal witness; use DTD/query corpora small
enough for the bound (the test suite's are).

As a **fuzz target** the module also ships its own corpus generation
(:func:`build_corpus` over :func:`corpus_schemas` — a schema grid
including recursive DTDs and a fragment mix including sibling axes and
sibling+data queries), a disagreement **minimizer**
(:func:`minimize_disagreement` greedily shrinks a failing (DTD, query)
pair while the disagreement persists), and a regression-test emitter
(:func:`regression_snippet` renders the minimal pair as a ready-to-paste
pytest function).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterator

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.properties import classify
from repro.errors import ReproError
from repro.regex.ast import Epsilon
from repro.regex.ops import enumerate_words
from repro.sat.registry import all_deciders
from repro.xmltree.model import Node, XMLTree
from repro.xmltree.validate import conforms
from repro.xpath import ast as xpast
from repro.xpath.ast import Path, Qualifier, constants_mentioned
from repro.xpath.canonical import canonicalize
from repro.xpath.fragments import (
    Feature,
    Fragment,
    features_of,
    uses_data,
)
from repro.xpath.fragments import (
    CHILD_QUAL,
    CHILD_QUAL_NEG,
    DATA_NEG_DOWN,
    DOWNWARD,
    DOWNWARD_QUAL,
    POSITIVE,
    REC_NEG_DOWN_UNION,
    SIBLING_QUAL,
    SIBLING_QUAL_NEG,
    UP_DATA_NEG,
)
from repro.xpath.semantics import satisfies


@dataclass(frozen=True)
class OracleBounds:
    """Enumeration bounds: depth of the tree, children-word length,
    node count, number of trees, and (for data queries) the attribute
    value pool and assignment cap."""

    max_depth: int = 4
    max_width: int = 3
    max_nodes: int = 14
    max_trees: int = 60_000
    words_per_type: int = 16
    value_pool: int = 2
    max_assignments: int = 256


Shape = tuple  # (label, (child shapes...))


def _shape_size(shape: Shape) -> int:
    label, children = shape
    return 1 + sum(_shape_size(child) for child in children)


def _enumerate_shapes(dtd: DTD, bounds: OracleBounds):
    """All conforming tree shapes rooted at each element type, memoized
    per (type, depth).  Deliberately the simplest possible recursion:
    a shape of depth ``d`` is a children word of the type's content model
    with a shape of depth ``d - 1`` for every letter."""

    @lru_cache(maxsize=None)
    def words(label: str) -> tuple[tuple[str, ...], ...]:
        return tuple(
            itertools.islice(
                enumerate_words(dtd.production(label), bounds.max_width),
                bounds.words_per_type,
            )
        )

    @lru_cache(maxsize=None)
    def shapes(label: str, depth: int) -> tuple[Shape, ...]:
        out: list[Shape] = []
        for word in words(label):
            if not word:
                out.append((label, ()))
                continue
            if depth == 0:
                continue
            child_options = [shapes(child, depth - 1) for child in word]
            for combo in itertools.product(*child_options):
                shape = (label, combo)
                if _shape_size(shape) <= bounds.max_nodes:
                    out.append(shape)
        return tuple(out)

    return shapes(dtd.root, bounds.max_depth)


def _materialize(shape: Shape, dtd: DTD, fill: str = "0") -> XMLTree:
    def build(part: Shape) -> Node:
        label, children = part
        node = Node(label=label)
        for attr in sorted(dtd.attrs_of(label)):
            node.attrs[attr] = fill
        for child in children:
            node.append(build(child))
        return node

    return XMLTree(build(shape))


def iter_small_trees(dtd: DTD, bounds: OracleBounds | None = None) -> Iterator[XMLTree]:
    """Enumerate DTD-conforming trees within ``bounds``.  Every yielded
    tree has been re-validated with :func:`conforms` — a non-conforming
    enumeration is a bug and raises immediately."""
    bounds = bounds or OracleBounds()
    dtd.require_terminating()
    produced = 0
    for shape in _enumerate_shapes(dtd, bounds):
        if produced >= bounds.max_trees:
            return
        tree = _materialize(shape, dtd)
        if not conforms(tree, dtd):
            raise AssertionError(
                f"oracle enumeration produced a non-conforming tree for "
                f"{dtd.root!r}: {tree.root.pretty()}"
            )
        produced += 1
        yield tree


def _assignments(
    tree: XMLTree, pool: list[str], cap: int
) -> Iterator[XMLTree]:
    """Yield the tree once per attribute-value assignment (in place)."""
    slots = [
        (node, attr) for node in tree.nodes() for attr in sorted(node.attrs)
    ]
    if not slots:
        yield tree
        return
    produced = 0
    for combo in itertools.product(pool, repeat=len(slots)):
        for (node, attr), value in zip(slots, combo):
            node.attrs[attr] = value
        produced += 1
        yield tree
        if produced >= cap:
            return


def find_witness(
    query: Path, dtd: DTD, bounds: OracleBounds | None = None
) -> XMLTree | None:
    """The oracle's verdict by exhibition: a conforming tree within
    ``bounds`` that models ``query``, or ``None`` if there is none."""
    bounds = bounds or OracleBounds()
    needs_data = uses_data(query)
    pool = sorted(constants_mentioned(query)) + [
        f"#o{i}" for i in range(1, bounds.value_pool + 1)
    ]
    for tree in iter_small_trees(dtd, bounds):
        if not needs_data:
            if satisfies(tree, query):
                return tree
            continue
        for assigned in _assignments(tree, pool, bounds.max_assignments):
            if satisfies(assigned, query):
                return assigned
    return None


@dataclass
class CrossCheck:
    """Outcome of one differential case."""

    query: str
    verdicts: dict[str, bool | None] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)  # declined / not applicable
    disagreements: list[str] = field(default_factory=list)
    oracle_sat: bool = False

    @property
    def checked(self) -> int:
        """Definitive decider verdicts actually compared to the oracle."""
        return sum(1 for verdict in self.verdicts.values() if verdict is not None)


def cross_check(
    query: Path, dtd: DTD, bounds: OracleBounds | None = None
) -> CrossCheck:
    """Run every applicable registered decider (and the planner-routed
    ``decide()``) on ``(query, dtd)`` and compare each verdict against
    the brute-force oracle."""
    from repro.sat.dispatch import decide

    bounds = bounds or OracleBounds()
    report = CrossCheck(query=str(query))
    witness = find_witness(query, dtd, bounds)
    report.oracle_sat = witness is not None

    canonical = canonicalize(query)
    features = features_of(canonical)
    traits = classify(dtd)

    candidates: list[tuple[str, object]] = [("decide()", None)]
    for spec in all_deciders():
        if not spec.needs_dtd:
            continue
        if not spec.accepts(features):
            continue
        if spec.traits and not all(traits.get(name, False) for name in spec.traits):
            continue
        candidates.append((spec.name, spec))

    for name, spec in candidates:
        try:
            if spec is None:
                result = decide(query, dtd)
            else:
                result = spec.call(canonical, dtd, None)
        except ReproError:
            report.skipped.append(name)
            continue
        report.verdicts[name] = result.satisfiable
        if result.satisfiable is True:
            claimed = result.witness
            if claimed is not None:
                if not conforms(claimed, dtd):
                    report.disagreements.append(
                        f"{name}: SAT witness does not conform to the DTD"
                    )
                elif not satisfies(claimed, query):
                    report.disagreements.append(
                        f"{name}: SAT witness does not satisfy the query"
                    )
            if witness is None:
                report.disagreements.append(
                    f"{name}: SAT but the oracle finds no witness within bounds"
                )
        elif result.satisfiable is False:
            if witness is not None:
                report.disagreements.append(
                    f"{name}: UNSAT but the oracle exhibits a witness:\n"
                    f"{witness.root.pretty()}"
                )
    return report


# -- fuzz-target corpus ---------------------------------------------------------

#: sibling-axis queries with data-value tests — a mix no single paper
#: fragment names but the bounded engine must still answer consistently
SIBLING_DATA = Fragment(
    "X(→,[],=,¬)",
    frozenset({
        Feature.RIGHT_SIB, Feature.QUALIFIER, Feature.DATA,
        Feature.NEGATION, Feature.LABEL_TEST,
    }),
)

#: the fuzz corpus's fragment mix: every DTD decider in the registry gets
#: exercised, including the sibling and sibling+data corners
CORPUS_FRAGMENTS: tuple[Fragment, ...] = (
    DOWNWARD,
    CHILD_QUAL,
    DOWNWARD_QUAL,
    CHILD_QUAL_NEG,
    REC_NEG_DOWN_UNION,
    POSITIVE,
    SIBLING_QUAL,
    SIBLING_QUAL_NEG,
    SIBLING_DATA,
    UP_DATA_NEG,
    DATA_NEG_DOWN,
)

_CORPUS_DTDS: tuple[str, ...] = (
    # 3SAT skeleton (disjunction, fixed arity)
    """
    root r
    r  -> X1, X2
    X1 -> T + F
    X2 -> T + F
    T  -> eps
    F  -> eps
    """,
    # choice + sequence
    """
    root r
    r -> A, (B + C)
    A -> eps
    B -> eps
    C -> eps
    """,
    # Kleene star (unbounded width)
    """
    root r
    r -> A, B
    A -> C*
    B -> eps
    C -> eps
    """,
    # attributes for data queries
    """
    root r
    r -> A, B?
    A -> eps
    B -> eps
    A @ a, b
    B @ a
    """,
    # linear recursion
    """
    root r
    r -> C
    C -> (C, R1) + eps
    R1 -> X + eps
    X -> eps
    """,
    # branching recursion: two self-referencing types
    """
    root r
    r -> N
    N -> (L, N) + (N, R) + eps
    L -> eps
    R -> eps
    """,
    # recursion with attributes and siblings under one parent
    """
    root r
    r -> S, S?
    S -> (A, S) + eps
    A -> eps
    A @ a
    S @ a
    """,
    # DC/DF-restrained real-world shape (XHTML-like capsuled flow content
    # plus a duplicate-free recursive nesting type; arXiv:1308.0769 —
    # routes to sat_realworld).  Recursion is kept *linear* (``d -> p, d?``)
    # so the oracle's shape enumeration stays small.
    """
    root h
    h -> t, b
    t -> eps
    b -> (p + d)*
    d -> p, d?
    p -> eps
    """,
    # duplicate-free real-world shape (RSS-like optional-heavy channel;
    # arXiv:1308.0769's DF class — routes to sat_realworld)
    """
    root ch
    ch -> t, l?, i*
    i -> t?, l?
    t -> eps
    l -> eps
    """,
)


def corpus_schemas() -> list[tuple[DTD, list[str], list[str]]]:
    """The fuzz corpus's schema grid as ``(dtd, labels, attrs)`` rows —
    small enough for the oracle bound, together covering disjunction,
    stars, attributes, and (branching) recursion."""
    rows = []
    for source in _CORPUS_DTDS:
        dtd = parse_dtd(source)
        labels = sorted(dtd.element_types)
        attrs = sorted(dtd.attribute_names) or ["a"]
        rows.append((dtd, labels, attrs))
    return rows


def build_corpus(
    seed: int,
    n_cases: int,
    fragments: tuple[Fragment, ...] = CORPUS_FRAGMENTS,
    schemas: list[tuple[DTD, list[str], list[str]]] | None = None,
    max_depth: int = 2,
) -> list[tuple[Path, DTD]]:
    """Draw a deterministic ``(query, DTD)`` fuzz corpus: the (fragment ×
    schema) grid is swept round-robin with seeded random queries until
    ``n_cases`` cases exist, so every decider and every schema class gets
    proportional coverage at any corpus size."""
    from repro.workloads.queries import random_query

    rng = random.Random(seed)
    grid = schemas if schemas is not None else corpus_schemas()
    pairs = [
        (fragment, dtd, labels, attrs)
        for fragment in fragments
        for dtd, labels, attrs in grid
    ]
    cases: list[tuple[Path, DTD]] = []
    while len(cases) < n_cases:
        for fragment, dtd, labels, attrs in pairs:
            if len(cases) >= n_cases:
                break
            query = random_query(
                rng, fragment, labels, attrs=attrs, max_depth=max_depth
            )
            cases.append((query, dtd))
    return cases


# -- disagreement minimization --------------------------------------------------

def _path_shrinks(path: Path) -> Iterator[Path]:
    """Structurally smaller variants of ``path`` (one shrink per yield).
    Shrinking needs no semantic preservation — any smaller query that
    still disagrees is a better regression case."""
    if isinstance(path, xpast.Union):
        yield path.left
        yield path.right
        for left in _path_shrinks(path.left):
            yield xpast.Union(left, path.right)
        for right in _path_shrinks(path.right):
            yield xpast.Union(path.left, right)
    elif isinstance(path, xpast.Seq):
        yield path.left
        yield path.right
        for left in _path_shrinks(path.left):
            yield xpast.Seq(left, path.right)
        for right in _path_shrinks(path.right):
            yield xpast.Seq(path.left, right)
    elif isinstance(path, xpast.Filter):
        yield path.path
        for qualifier in _qualifier_shrinks(path.qualifier):
            yield xpast.Filter(path.path, qualifier)
        for inner in _path_shrinks(path.path):
            yield xpast.Filter(inner, path.qualifier)


def _qualifier_shrinks(qualifier: Qualifier) -> Iterator[Qualifier]:
    if isinstance(qualifier, (xpast.And, xpast.Or)):
        yield qualifier.left
        yield qualifier.right
        connective = type(qualifier)
        for left in _qualifier_shrinks(qualifier.left):
            yield connective(left, qualifier.right)
        for right in _qualifier_shrinks(qualifier.right):
            yield connective(qualifier.left, right)
    elif isinstance(qualifier, xpast.Not):
        yield qualifier.inner
        for inner in _qualifier_shrinks(qualifier.inner):
            yield xpast.Not(inner)
    elif isinstance(qualifier, xpast.PathExists):
        for path in _path_shrinks(qualifier.path):
            yield xpast.PathExists(path)
    elif isinstance(qualifier, xpast.AttrConstCmp):
        yield xpast.PathExists(qualifier.path)
    elif isinstance(qualifier, xpast.AttrAttrCmp):
        yield xpast.PathExists(qualifier.left_path)
        yield xpast.PathExists(qualifier.right_path)


def _dtd_shrinks(dtd: DTD) -> Iterator[DTD]:
    """Smaller DTDs: drop an (unreferenced) element type, flatten a
    production to ``eps``, or drop an attribute.  Candidates that fail
    DTD well-formedness (e.g. dropping a type some production still
    mentions) are skipped here."""
    def build(**kwargs) -> DTD | None:
        try:
            return DTD(**kwargs)
        except ReproError:
            return None

    candidates: list[DTD | None] = []
    for name in sorted(dtd.element_types - {dtd.root}):
        keep = dtd.element_types - {name}
        candidates.append(build(
            root=dtd.root,
            productions={k: v for k, v in dtd.productions.items() if k in keep},
            attributes={k: v for k, v in dtd.attributes.items() if k in keep},
        ))
    for name in sorted(dtd.element_types):
        if not isinstance(dtd.production(name), Epsilon):
            candidates.append(build(
                root=dtd.root,
                productions={**dtd.productions, name: Epsilon()},
                attributes=dtd.attributes,
            ))
    for name in sorted(dtd.attributes):
        for attr in sorted(dtd.attrs_of(name)):
            remaining = {
                element: frozenset(a for a in attrs if (element, a) != (name, attr))
                for element, attrs in dtd.attributes.items()
            }
            candidates.append(build(
                root=dtd.root,
                productions=dtd.productions,
                attributes={k: v for k, v in remaining.items() if v},
            ))
    for candidate in candidates:
        if candidate is not None:
            yield candidate


@dataclass
class MinimizedDisagreement:
    """Outcome of :func:`minimize_disagreement`: the shrunken failing
    pair plus the sizes it started from."""

    query: Path
    dtd: DTD
    original_query_size: int
    original_dtd_size: int

    @property
    def query_size(self) -> int:
        return self.query.size()

    @property
    def dtd_size(self) -> int:
        return self.dtd.size()


def minimize_disagreement(
    query: Path,
    dtd: DTD,
    bounds: OracleBounds | None = None,
    disagrees: Callable[[Path, DTD], bool] | None = None,
    max_steps: int = 200,
) -> MinimizedDisagreement:
    """Greedily shrink a disagreeing ``(query, dtd)`` pair while the
    disagreement persists, so a fuzz failure lands as a minimal, readable
    regression case.

    ``disagrees`` defaults to "``cross_check`` reports a disagreement";
    tests (and other harnesses, e.g. one diffing two engine
    configurations) can inject their own predicate.  A candidate on which
    the predicate *raises* is treated as not disagreeing — shrinking must
    never trade a verdict bug for a crash elsewhere.  Raises
    :class:`ValueError` when the input pair does not disagree.
    """
    if disagrees is None:
        check_bounds = bounds

        def disagrees(candidate_query: Path, candidate_dtd: DTD) -> bool:
            return bool(
                cross_check(candidate_query, candidate_dtd, check_bounds).disagreements
            )

    def holds(candidate_query: Path, candidate_dtd: DTD) -> bool:
        try:
            return bool(disagrees(candidate_query, candidate_dtd))
        except Exception:
            return False

    if not holds(query, dtd):
        raise ValueError("minimize_disagreement needs a disagreeing input pair")

    result = MinimizedDisagreement(
        query=query, dtd=dtd,
        original_query_size=query.size(), original_dtd_size=dtd.size(),
    )
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _path_shrinks(result.query):
            steps += 1
            if candidate.size() < result.query.size() and holds(candidate, result.dtd):
                result.query = candidate
                progress = True
                break
            if steps >= max_steps:
                break
    progress = True
    while progress and steps < max_steps:
        progress = False
        for candidate in _dtd_shrinks(result.dtd):
            steps += 1
            try:
                smaller = candidate.size() < result.dtd.size()
            except KeyError:
                continue
            if smaller and holds(result.query, candidate):
                result.dtd = candidate
                progress = True
                break
            if steps >= max_steps:
                break
    return result


def regression_snippet(
    query: Path, dtd: DTD, bounds: OracleBounds | None = None
) -> str:
    """Render a minimal disagreement as a ready-to-paste pytest function
    (drop it into ``tests/test_differential_oracle.py``)."""
    bounds_args = ""
    if bounds is not None:
        defaults = OracleBounds()
        overrides = [
            f"{name}={getattr(bounds, name)}"
            for name in (
                "max_depth", "max_width", "max_nodes", "max_trees",
                "words_per_type", "value_pool", "max_assignments",
            )
            if getattr(bounds, name) != getattr(defaults, name)
        ]
        bounds_args = ", ".join(overrides)
    import hashlib

    digest = hashlib.sha256(
        (str(query) + "\n" + dtd.describe()).encode("utf-8")
    ).hexdigest()
    tag = int(digest[:8], 16)
    dtd_block = "\n".join(f"        {line}" for line in dtd.describe().splitlines())
    return (
        f"def test_oracle_regression_{tag}():\n"
        f'    """Minimized fuzz disagreement (auto-generated)."""\n'
        f"    dtd = parse_dtd(\n"
        f'        """\n'
        f"{dtd_block}\n"
        f'        """\n'
        f"    )\n"
        f"    report = cross_check(\n"
        f"        parse_query({str(query)!r}), dtd, OracleBounds({bounds_args})\n"
        f"    )\n"
        f'    assert not report.disagreements, "\\n".join(report.disagreements)\n'
    )
