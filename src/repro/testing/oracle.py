"""Brute-force differential oracle.

The deciders in :mod:`repro.sat` implement the paper's theorems; this
module implements *none* of them.  It enumerates small DTD-conforming
trees directly from the grammar (:func:`iter_small_trees`), evaluates
the query on each with the reference semantics
(:func:`repro.xpath.semantics.evaluate` via ``satisfies``), and declares
satisfiability by exhibition: a query is SAT iff some enumerated tree
models it.  Every enumerated tree is re-checked with
:func:`repro.xmltree.validate.conforms`, so an enumeration bug cannot
silently bias the oracle toward SAT.

:func:`cross_check` runs the oracle against **every** registered decider
that accepts a ``(query, DTD)`` case — plus the full ``decide()``
dispatch path — and reports disagreements:

* decider ``SAT``  but no tree within the oracle bound models the query;
* decider ``UNSAT`` but the oracle exhibits a witness;
* decider ``SAT`` whose claimed witness fails to conform or to satisfy
  the (original, un-rewritten) query.

``unknown`` verdicts and declines are recorded but are not
disagreements.  The oracle is bounded, so the first check is only valid
when the bound covers the minimal witness; use DTD/query corpora small
enough for the bound (the test suite's are).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Iterator

from repro.dtd.model import DTD
from repro.dtd.properties import classify
from repro.errors import ReproError
from repro.regex.ops import enumerate_words
from repro.sat.registry import all_deciders
from repro.xmltree.model import Node, XMLTree
from repro.xmltree.validate import conforms
from repro.xpath.ast import Path, constants_mentioned
from repro.xpath.canonical import canonicalize
from repro.xpath.fragments import features_of, uses_data
from repro.xpath.semantics import satisfies


@dataclass(frozen=True)
class OracleBounds:
    """Enumeration bounds: depth of the tree, children-word length,
    node count, number of trees, and (for data queries) the attribute
    value pool and assignment cap."""

    max_depth: int = 4
    max_width: int = 3
    max_nodes: int = 14
    max_trees: int = 60_000
    words_per_type: int = 16
    value_pool: int = 2
    max_assignments: int = 256


Shape = tuple  # (label, (child shapes...))


def _shape_size(shape: Shape) -> int:
    label, children = shape
    return 1 + sum(_shape_size(child) for child in children)


def _enumerate_shapes(dtd: DTD, bounds: OracleBounds):
    """All conforming tree shapes rooted at each element type, memoized
    per (type, depth).  Deliberately the simplest possible recursion:
    a shape of depth ``d`` is a children word of the type's content model
    with a shape of depth ``d - 1`` for every letter."""

    @lru_cache(maxsize=None)
    def words(label: str) -> tuple[tuple[str, ...], ...]:
        return tuple(
            itertools.islice(
                enumerate_words(dtd.production(label), bounds.max_width),
                bounds.words_per_type,
            )
        )

    @lru_cache(maxsize=None)
    def shapes(label: str, depth: int) -> tuple[Shape, ...]:
        out: list[Shape] = []
        for word in words(label):
            if not word:
                out.append((label, ()))
                continue
            if depth == 0:
                continue
            child_options = [shapes(child, depth - 1) for child in word]
            for combo in itertools.product(*child_options):
                shape = (label, combo)
                if _shape_size(shape) <= bounds.max_nodes:
                    out.append(shape)
        return tuple(out)

    return shapes(dtd.root, bounds.max_depth)


def _materialize(shape: Shape, dtd: DTD, fill: str = "0") -> XMLTree:
    def build(part: Shape) -> Node:
        label, children = part
        node = Node(label=label)
        for attr in sorted(dtd.attrs_of(label)):
            node.attrs[attr] = fill
        for child in children:
            node.append(build(child))
        return node

    return XMLTree(build(shape))


def iter_small_trees(dtd: DTD, bounds: OracleBounds | None = None) -> Iterator[XMLTree]:
    """Enumerate DTD-conforming trees within ``bounds``.  Every yielded
    tree has been re-validated with :func:`conforms` — a non-conforming
    enumeration is a bug and raises immediately."""
    bounds = bounds or OracleBounds()
    dtd.require_terminating()
    produced = 0
    for shape in _enumerate_shapes(dtd, bounds):
        if produced >= bounds.max_trees:
            return
        tree = _materialize(shape, dtd)
        if not conforms(tree, dtd):
            raise AssertionError(
                f"oracle enumeration produced a non-conforming tree for "
                f"{dtd.root!r}: {tree.root.pretty()}"
            )
        produced += 1
        yield tree


def _assignments(
    tree: XMLTree, pool: list[str], cap: int
) -> Iterator[XMLTree]:
    """Yield the tree once per attribute-value assignment (in place)."""
    slots = [
        (node, attr) for node in tree.nodes() for attr in sorted(node.attrs)
    ]
    if not slots:
        yield tree
        return
    produced = 0
    for combo in itertools.product(pool, repeat=len(slots)):
        for (node, attr), value in zip(slots, combo):
            node.attrs[attr] = value
        produced += 1
        yield tree
        if produced >= cap:
            return


def find_witness(
    query: Path, dtd: DTD, bounds: OracleBounds | None = None
) -> XMLTree | None:
    """The oracle's verdict by exhibition: a conforming tree within
    ``bounds`` that models ``query``, or ``None`` if there is none."""
    bounds = bounds or OracleBounds()
    needs_data = uses_data(query)
    pool = sorted(constants_mentioned(query)) + [
        f"#o{i}" for i in range(1, bounds.value_pool + 1)
    ]
    for tree in iter_small_trees(dtd, bounds):
        if not needs_data:
            if satisfies(tree, query):
                return tree
            continue
        for assigned in _assignments(tree, pool, bounds.max_assignments):
            if satisfies(assigned, query):
                return assigned
    return None


@dataclass
class CrossCheck:
    """Outcome of one differential case."""

    query: str
    verdicts: dict[str, bool | None] = field(default_factory=dict)
    skipped: list[str] = field(default_factory=list)  # declined / not applicable
    disagreements: list[str] = field(default_factory=list)
    oracle_sat: bool = False

    @property
    def checked(self) -> int:
        """Definitive decider verdicts actually compared to the oracle."""
        return sum(1 for verdict in self.verdicts.values() if verdict is not None)


def cross_check(
    query: Path, dtd: DTD, bounds: OracleBounds | None = None
) -> CrossCheck:
    """Run every applicable registered decider (and the planner-routed
    ``decide()``) on ``(query, dtd)`` and compare each verdict against
    the brute-force oracle."""
    from repro.sat.dispatch import decide

    bounds = bounds or OracleBounds()
    report = CrossCheck(query=str(query))
    witness = find_witness(query, dtd, bounds)
    report.oracle_sat = witness is not None

    canonical = canonicalize(query)
    features = features_of(canonical)
    traits = classify(dtd)

    candidates: list[tuple[str, object]] = [("decide()", None)]
    for spec in all_deciders():
        if not spec.needs_dtd:
            continue
        if not spec.accepts(features):
            continue
        if spec.traits and not all(traits.get(name, False) for name in spec.traits):
            continue
        candidates.append((spec.name, spec))

    for name, spec in candidates:
        try:
            if spec is None:
                result = decide(query, dtd)
            else:
                result = spec.call(canonical, dtd, None)
        except ReproError:
            report.skipped.append(name)
            continue
        report.verdicts[name] = result.satisfiable
        if result.satisfiable is True:
            claimed = result.witness
            if claimed is not None:
                if not conforms(claimed, dtd):
                    report.disagreements.append(
                        f"{name}: SAT witness does not conform to the DTD"
                    )
                elif not satisfies(claimed, query):
                    report.disagreements.append(
                        f"{name}: SAT witness does not satisfy the query"
                    )
            if witness is None:
                report.disagreements.append(
                    f"{name}: SAT but the oracle finds no witness within bounds"
                )
        elif result.satisfiable is False:
            if witness is not None:
                report.disagreements.append(
                    f"{name}: UNSAT but the oracle exhibits a witness:\n"
                    f"{witness.root.pretty()}"
                )
    return report
