"""Self-validation harnesses: machinery for checking the library against
itself (brute-force oracles, differential cross-checks)."""

from repro.testing.oracle import (
    CrossCheck,
    OracleBounds,
    cross_check,
    find_witness,
    iter_small_trees,
)

__all__ = [
    "CrossCheck",
    "OracleBounds",
    "cross_check",
    "find_witness",
    "iter_small_trees",
]
