"""Self-validation harnesses: machinery for checking the library against
itself (brute-force oracles, differential cross-checks)."""

from repro.testing.oracle import (
    CORPUS_FRAGMENTS,
    CrossCheck,
    MinimizedDisagreement,
    OracleBounds,
    build_corpus,
    corpus_schemas,
    cross_check,
    find_witness,
    iter_small_trees,
    minimize_disagreement,
    regression_snippet,
)

__all__ = [
    "CORPUS_FRAGMENTS",
    "CrossCheck",
    "MinimizedDisagreement",
    "OracleBounds",
    "build_corpus",
    "corpus_schemas",
    "cross_check",
    "find_witness",
    "iter_small_trees",
    "minimize_disagreement",
    "regression_snippet",
]
