"""The containment problem ``CNT(X)`` and its reduction to (un)satisfiability.

Proposition 3.2:

1. ``SAT(X)`` reduces to the complement of ``CNT(X)`` (``(p, D)``
   satisfiable iff ``p ⊄ ∅_D``);
2. for Boolean queries ``ε[q]``: ``p1 ⊆ p2`` iff ``ε[q1 ∧ ¬q2]`` is
   unsatisfiable;
3. for fragments with negation closed under ``inverse``:
   ``p1 ⊆ p2`` iff ``p1[¬( inverse(p2)[¬↑] )]`` is unsatisfiable.

``contains`` runs reduction (3) (or (2) for Boolean queries) through
:func:`repro.sat.dispatch.decide`; because some fragments only admit a
bounded semi-decision, the result is three-valued: containment *holds*
(the non-containment query is unsatisfiable), *fails* (a counterexample
tree is produced), or *unknown*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.model import DTD
from repro.sat.bounded import Bounds
from repro.sat.dispatch import decide
from repro.sat.result import SatResult
from repro.xmltree.model import XMLTree
from repro.xpath import ast
from repro.xpath.inverse import boolean_non_containment_query, non_containment_query
from repro.xpath.semantics import evaluate
from repro.xmltree.generate import random_tree


@dataclass
class ContainmentResult:
    """Outcome of a containment check.

    ``contained`` is three-valued like :class:`SatResult.satisfiable`;
    ``counterexample`` is a tree where some node is selected by ``p1`` but
    not ``p2``.
    """

    contained: bool | None
    method: str
    counterexample: XMLTree | None = None
    reason: str = ""

    @property
    def unknown(self) -> bool:
        return self.contained is None


def contains(p1: ast.Path, p2: ast.Path, dtd: DTD | None,
             bounds: Bounds | None = None) -> ContainmentResult:
    """Is ``p1 ⊆ p2`` under ``dtd`` (over all trees when ``dtd is None``)?

    Uses Proposition 3.2(2) for Boolean queries and 3.2(3) otherwise.
    """
    if _is_boolean(p1) and _is_boolean(p2):
        query = boolean_non_containment_query(p1.qualifier, p2.qualifier)  # type: ignore[union-attr]
        method = "prop3.2(2)"
    else:
        query = non_containment_query(p1, p2)
        method = "prop3.2(3)"
    inner = decide(query, dtd, bounds)
    return _interpret(inner, method)


def contains_boolean(q1: ast.Qualifier, q2: ast.Qualifier, dtd: DTD | None,
                     bounds: Bounds | None = None) -> ContainmentResult:
    """``ε[q1] ⊆ ε[q2]`` via Proposition 3.2(2)."""
    inner = decide(boolean_non_containment_query(q1, q2), dtd, bounds)
    return _interpret(inner, "prop3.2(2)")


def _interpret(inner: SatResult, method: str) -> ContainmentResult:
    if inner.is_sat:
        return ContainmentResult(
            False, method, counterexample=inner.witness,
            reason=f"non-containment witness found via {inner.method}",
        )
    if inner.is_unsat:
        return ContainmentResult(
            True, method, reason=f"non-containment query unsatisfiable via {inner.method}"
        )
    return ContainmentResult(None, method, reason=inner.reason)


def _is_boolean(path: ast.Path) -> bool:
    return isinstance(path, ast.Filter) and isinstance(path.path, ast.Empty)


def brute_force_contains(p1: ast.Path, p2: ast.Path, dtd: DTD,
                         trials: int = 200, seed: int = 0) -> bool:
    """Randomized refutation oracle for tests: samples conforming trees and
    checks ``r[[p1]] ⊆ r[[p2]]`` on each; ``False`` is definitive,
    ``True`` only means "no counterexample found"."""
    import random

    rng = random.Random(seed)
    for _ in range(trials):
        tree = random_tree(dtd, rng, max_nodes=25)
        selected_1 = evaluate(p1, tree)
        if not selected_1:
            continue
        selected_2 = evaluate(p2, tree)
        if not selected_1 <= selected_2:
            return False
    return True
