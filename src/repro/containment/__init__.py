"""Containment via satisfiability (Proposition 3.2)."""

from repro.containment.reduction import (
    ContainmentResult,
    contains,
    contains_boolean,
    brute_force_contains,
)

__all__ = [
    "ContainmentResult", "contains", "contains_boolean", "brute_force_contains",
]
