"""Determinization, minimization and Boolean combinations of DFAs.

Used for language-level questions about content models: equivalence (for
testing the normalization of Proposition 3.3), inclusion, and emptiness of
products.  The DFAs are total (a sink state is always materialized) so that
complementation is a matter of flipping accepting states.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.regex.ast import Regex
from repro.regex.nfa import NFA, glushkov


@dataclass
class DFA:
    """A total deterministic automaton over an explicit alphabet.

    States are integers ``0 .. n-1``; ``start`` is the initial state;
    ``delta[state][symbol]`` is defined for every symbol of ``alphabet``.
    """

    alphabet: frozenset[str]
    delta: list[dict[str, int]]
    start: int
    accepting: frozenset[int]

    @property
    def state_count(self) -> int:
        return len(self.delta)

    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        state = self.start
        for letter in word:
            if letter not in self.alphabet:
                return False
            state = self.delta[state][letter]
        return state in self.accepting

    def complement(self) -> "DFA":
        return DFA(
            alphabet=self.alphabet,
            delta=[dict(row) for row in self.delta],
            start=self.start,
            accepting=frozenset(range(self.state_count)) - self.accepting,
        )

    def is_empty(self) -> bool:
        return self.shortest_accepted() is None

    def shortest_accepted(self) -> tuple[str, ...] | None:
        """A shortest accepted word, or ``None`` if the language is empty."""
        if self.start in self.accepting:
            return ()
        parents: dict[int, tuple[int, str]] = {}
        queue = deque([self.start])
        seen = {self.start}
        order = sorted(self.alphabet)
        while queue:
            state = queue.popleft()
            for letter in order:
                succ = self.delta[state][letter]
                if succ in seen:
                    continue
                parents[succ] = (state, letter)
                if succ in self.accepting:
                    word: list[str] = []
                    current = succ
                    while current != self.start:
                        current, symbol = parents[current]
                        word.append(symbol)
                    return tuple(reversed(word))
                seen.add(succ)
                queue.append(succ)
        return None


def determinize(nfa: NFA, alphabet: frozenset[str] | None = None) -> DFA:
    """Subset construction over ``alphabet`` (defaults to the NFA's own)."""
    if alphabet is None:
        alphabet = nfa.alphabet()
    transitions = nfa.transitions()
    initial = frozenset({0})
    index: dict[frozenset[int], int] = {initial: 0}
    delta: list[dict[str, int]] = [{}]
    accepting: set[int] = set()
    if any(nfa.is_accepting(q) for q in initial):
        accepting.add(0)
    queue = deque([initial])
    while queue:
        subset = queue.popleft()
        row = delta[index[subset]]
        for letter in alphabet:
            targets: set[int] = set()
            for state in subset:
                targets |= transitions.get(state, {}).get(letter, frozenset())
            succ = frozenset(targets)
            if succ not in index:
                index[succ] = len(delta)
                delta.append({})
                queue.append(succ)
                if any(nfa.is_accepting(q) for q in succ):
                    accepting.add(index[succ])
            row[letter] = index[succ]
    return DFA(alphabet=alphabet, delta=delta, start=0, accepting=frozenset(accepting))


def minimize(dfa: DFA) -> DFA:
    """Hopcroft partition refinement (on the reachable part)."""
    reachable = _reachable_states(dfa)
    accepting = dfa.accepting & reachable
    rejecting = reachable - accepting
    partition: list[set[int]] = [block for block in (accepting, rejecting) if block]
    worklist: list[set[int]] = [min(partition, key=len)] if len(partition) == 2 else list(partition)
    order = sorted(dfa.alphabet)

    # Precompute inverse transitions restricted to reachable states.
    inverse: dict[str, dict[int, set[int]]] = {letter: {} for letter in order}
    for state in reachable:
        for letter in order:
            succ = dfa.delta[state][letter]
            inverse[letter].setdefault(succ, set()).add(state)

    while worklist:
        splitter = worklist.pop()
        for letter in order:
            sources: set[int] = set()
            for state in splitter:
                sources |= inverse[letter].get(state, set())
            new_partition: list[set[int]] = []
            for block in partition:
                inside = block & sources
                outside = block - sources
                if inside and outside:
                    new_partition.extend((inside, outside))
                    if block in worklist:
                        worklist.remove(block)
                        worklist.extend((inside, outside))
                    else:
                        worklist.append(min(inside, outside, key=len))
                else:
                    new_partition.append(block)
            partition = new_partition

    block_of: dict[int, int] = {}
    for block_index, block in enumerate(partition):
        for state in block:
            block_of[state] = block_index
    delta: list[dict[str, int]] = [{} for _ in partition]
    for block_index, block in enumerate(partition):
        representative = next(iter(block))
        for letter in order:
            delta[block_index][letter] = block_of[dfa.delta[representative][letter]]
    return DFA(
        alphabet=dfa.alphabet,
        delta=delta,
        start=block_of[dfa.start],
        accepting=frozenset(block_of[state] for state in accepting),
    )


def product(left: DFA, right: DFA, mode: str = "intersection") -> DFA:
    """Product automaton; ``mode`` is ``intersection``, ``union`` or
    ``difference`` (left minus right).  Both inputs must share an alphabet
    superset; the product runs over the union alphabet, treating missing
    letters as impossible (handled by requiring equal alphabets)."""
    if left.alphabet != right.alphabet:
        raise ValueError("product requires identical alphabets; re-determinize over a common alphabet")
    order = sorted(left.alphabet)
    index: dict[tuple[int, int], int] = {(left.start, right.start): 0}
    delta: list[dict[str, int]] = [{}]
    pairs = deque([(left.start, right.start)])
    accepting: set[int] = set()

    def is_accepting(pair: tuple[int, int]) -> bool:
        in_left = pair[0] in left.accepting
        in_right = pair[1] in right.accepting
        if mode == "intersection":
            return in_left and in_right
        if mode == "union":
            return in_left or in_right
        if mode == "difference":
            return in_left and not in_right
        raise ValueError(f"unknown product mode: {mode}")

    if is_accepting((left.start, right.start)):
        accepting.add(0)
    while pairs:
        pair = pairs.popleft()
        row = delta[index[pair]]
        for letter in order:
            succ = (left.delta[pair[0]][letter], right.delta[pair[1]][letter])
            if succ not in index:
                index[succ] = len(delta)
                delta.append({})
                pairs.append(succ)
                if is_accepting(succ):
                    accepting.add(index[succ])
            row[letter] = index[succ]
    return DFA(alphabet=left.alphabet, delta=delta, start=0, accepting=frozenset(accepting))


def regex_to_dfa(regex: Regex, alphabet: frozenset[str] | None = None) -> DFA:
    """Convenience: Glushkov + subset construction (optionally over a larger
    alphabet so two expressions can be compared)."""
    nfa = glushkov(regex)
    full_alphabet = nfa.alphabet() if alphabet is None else alphabet | nfa.alphabet()
    return determinize(nfa, full_alphabet)


def _reachable_states(dfa: DFA) -> set[int]:
    seen = {dfa.start}
    queue = deque([dfa.start])
    while queue:
        state = queue.popleft()
        for succ in dfa.delta[state].values():
            if succ not in seen:
                seen.add(succ)
                queue.append(succ)
    return seen
