"""AST for regular expressions over element-type alphabets.

The node types mirror the constructs a DTD content model may use
(Section 2.1 of the paper): the empty word ``ε``, element names,
concatenation ``,``, disjunction ``+`` and Kleene star ``*``.  We also keep
``?`` (optionality) as a first-class node because real DTDs use it and the
paper's constructions (e.g. the 2RM encoding's ``C -> (C, R1, R2) + ε``)
translate naturally into it.

All nodes are immutable and hashable so they can be used as dictionary keys
in the dynamic programs of Sections 4 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator


class Regex:
    """Base class for content-model regular expressions."""

    __slots__ = ()

    # -- structural predicates -------------------------------------------
    @property
    def nullable(self) -> bool:
        """True iff the empty word belongs to the language."""
        raise NotImplementedError

    def alphabet(self) -> frozenset[str]:
        """All element names occurring syntactically in this expression.

        Because the AST has no empty-language constant, every symbol in the
        alphabet occurs in at least one word of the language.
        """
        raise NotImplementedError

    def children(self) -> tuple["Regex", ...]:
        return ()

    def walk(self) -> Iterator["Regex"]:
        """Yield this node and every descendant node (pre-order)."""
        yield self
        for child in self.children():
            yield from child.walk()

    # -- classification helpers used by dtd.properties --------------------
    @property
    def uses_union(self) -> bool:
        return any(isinstance(node, Union) for node in self.walk())

    @property
    def uses_star(self) -> bool:
        return any(isinstance(node, (Star, Optional)) for node in self.walk())

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def __str__(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"


@dataclass(frozen=True, repr=False)
class Epsilon(Regex):
    """The empty word ``ε``."""

    @property
    def nullable(self) -> bool:
        return True

    def alphabet(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "eps"


@dataclass(frozen=True, repr=False)
class Symbol(Regex):
    """A single element name."""

    name: str

    @property
    def nullable(self) -> bool:
        return False

    def alphabet(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, repr=False)
class Concat(Regex):
    """Concatenation of two or more parts (the paper's ``,``)."""

    parts: tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concat requires at least two parts")

    @cached_property
    def _nullable(self) -> bool:
        return all(part.nullable for part in self.parts)

    @property
    def nullable(self) -> bool:
        return self._nullable

    def alphabet(self) -> frozenset[str]:
        return frozenset().union(*(part.alphabet() for part in self.parts))

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, (Union,)):
                text = f"({text})"
            rendered.append(text)
        return ", ".join(rendered)


@dataclass(frozen=True, repr=False)
class Union(Regex):
    """Disjunction of two or more alternatives (the paper's ``+``)."""

    parts: tuple[Regex, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Union requires at least two parts")

    @cached_property
    def _nullable(self) -> bool:
        return any(part.nullable for part in self.parts)

    @property
    def nullable(self) -> bool:
        return self._nullable

    def alphabet(self) -> frozenset[str]:
        return frozenset().union(*(part.alphabet() for part in self.parts))

    def children(self) -> tuple[Regex, ...]:
        return self.parts

    def __str__(self) -> str:
        rendered = []
        for part in self.parts:
            text = str(part)
            if isinstance(part, (Concat, Union)):
                text = f"({text})"
            rendered.append(text)
        return " + ".join(rendered)


@dataclass(frozen=True, repr=False)
class Star(Regex):
    """Kleene star."""

    inner: Regex

    @property
    def nullable(self) -> bool:
        return True

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        text = str(self.inner)
        if isinstance(self.inner, (Concat, Union, Optional, Star)):
            text = f"({text})"
        return f"{text}*"


@dataclass(frozen=True, repr=False)
class Optional(Regex):
    """Zero-or-one occurrences (``?``), i.e. ``inner + ε``."""

    inner: Regex

    @property
    def nullable(self) -> bool:
        return True

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def children(self) -> tuple[Regex, ...]:
        return (self.inner,)

    def __str__(self) -> str:
        text = str(self.inner)
        if isinstance(self.inner, (Concat, Union, Optional, Star)):
            text = f"({text})"
        return f"{text}?"


# ---------------------------------------------------------------------------
# Smart constructors.  They perform light normalization (flattening nested
# n-ary operators, collapsing trivial cases) so programmatically built
# content models stay readable.
# ---------------------------------------------------------------------------

def epsilon() -> Regex:
    return Epsilon()


def sym(name: str) -> Regex:
    return Symbol(name)


def concat(*parts: Regex | str) -> Regex:
    """Concatenation; flattens nested Concat and drops ε parts."""
    flat: list[Regex] = []
    for part in parts:
        node = Symbol(part) if isinstance(part, str) else part
        if isinstance(node, Epsilon):
            continue
        if isinstance(node, Concat):
            flat.extend(node.parts)
        else:
            flat.append(node)
    if not flat:
        return Epsilon()
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def union(*parts: Regex | str) -> Regex:
    """Disjunction; flattens nested Union and deduplicates alternatives."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in parts:
        node = Symbol(part) if isinstance(part, str) else part
        alternatives = node.parts if isinstance(node, Union) else (node,)
        for alt in alternatives:
            if alt not in seen:
                seen.add(alt)
                flat.append(alt)
    if not flat:
        raise ValueError("union requires at least one alternative")
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def star(inner: Regex | str) -> Regex:
    node = Symbol(inner) if isinstance(inner, str) else inner
    if isinstance(node, (Star, Epsilon)):
        return node if isinstance(node, Star) else Epsilon()
    if isinstance(node, Optional):
        return Star(node.inner)
    return Star(node)


def optional(inner: Regex | str) -> Regex:
    node = Symbol(inner) if isinstance(inner, str) else inner
    if isinstance(node, (Star, Optional, Epsilon)):
        return node
    return Optional(node)
