"""Parser for content-model expressions.

Concrete syntax (paper conventions, Section 2.1):

* element names: identifiers (``[A-Za-z_][A-Za-z0-9_.:-]*``);
* the empty word: ``eps`` (also accepted: ``EMPTY``, the XML-DTD spelling);
* concatenation: ``,``;
* disjunction: ``+`` (the paper's convention) or ``|`` (XML-DTD convention);
* Kleene star: postfix ``*``; optionality: postfix ``?``;
* grouping: parentheses.

Note that unlike XML DTDs, postfix ``+`` (one-or-more) is *not* supported
because the paper reserves infix ``+`` for disjunction; write ``a, a*``
explicitly.  Precedence (loosest to tightest): disjunction, concatenation,
postfix operators.

Examples
--------
>>> str(parse_regex("X1, X2, X3"))
'X1, X2, X3'
>>> str(parse_regex("(C, R1, R2) + eps"))
'(C, R1, R2) + eps'
>>> str(parse_regex("(X + eps), (T + F)"))
'(X + eps), (T + F)'
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.regex.ast import (
    Concat,
    Epsilon,
    Optional,
    Regex,
    Star,
    Symbol,
    Union,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.:-]*)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<plus>\+)
  | (?P<bar>\|)
  | (?P<star>\*)
  | (?P<question>\?)
    """,
    re.VERBOSE,
)

_EPSILON_NAMES = {"eps", "EMPTY", "epsilon"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise ParseError("unexpected character in content model", text, index)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), index))
        index = match.end()
    tokens.append(_Token("end", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind or 'end of input'}",
                self.text,
                token.position,
            )
        return self.advance()

    # grammar: union := concat (('+' | '|') concat)*
    def parse_union(self) -> Regex:
        parts = [self.parse_concat()]
        while self.peek().kind in ("plus", "bar"):
            self.advance()
            parts.append(self.parse_concat())
        if len(parts) == 1:
            return parts[0]
        return Union(tuple(parts))

    # concat := postfix (',' postfix)*
    def parse_concat(self) -> Regex:
        parts = [self.parse_postfix()]
        while self.peek().kind == "comma":
            self.advance()
            parts.append(self.parse_postfix())
        flattened = [part for part in parts if not isinstance(part, Epsilon)]
        if not flattened:
            return Epsilon()
        if len(flattened) == 1:
            return flattened[0]
        return Concat(tuple(flattened))

    # postfix := atom ('*' | '?')*
    def parse_postfix(self) -> Regex:
        node = self.parse_atom()
        while self.peek().kind in ("star", "question"):
            token = self.advance()
            if token.kind == "star":
                node = node if isinstance(node, Epsilon) else Star(node)
            else:
                node = node if isinstance(node, (Epsilon, Star, Optional)) else Optional(node)
        return node

    # atom := NAME | 'eps' | '(' union ')'
    def parse_atom(self) -> Regex:
        token = self.peek()
        if token.kind == "name":
            self.advance()
            if token.value in _EPSILON_NAMES:
                return Epsilon()
            return Symbol(token.value)
        if token.kind == "lparen":
            self.advance()
            inner = self.parse_union()
            self.expect("rparen")
            return inner
        raise ParseError(
            f"expected element name, 'eps' or '(', found {token.kind or 'end of input'}",
            self.text,
            token.position,
        )


def parse_regex(text: str) -> Regex:
    """Parse a content-model expression.

    Raises :class:`repro.errors.ParseError` on malformed input.
    """
    parser = _Parser(text)
    node = parser.parse_union()
    trailing = parser.peek()
    if trailing.kind != "end":
        raise ParseError("trailing input after content model", text, trailing.position)
    return node
