"""Glushkov (position) automata for content models.

The Glushkov construction is the natural automaton model for DTD content
models: its states are the symbol *occurrences* of the expression, so a run
over a children word visits one state per child.  Theorem 7.1's sibling-axis
decision procedure exploits exactly this position/state correspondence.

The construction is the textbook one: ``first``, ``last`` and ``follow``
sets computed bottom-up, with state ``0`` as the unique initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regex.ast import Concat, Epsilon, Optional, Regex, Star, Symbol, Union


@dataclass
class NFA:
    """A Glushkov position automaton.

    Attributes
    ----------
    symbols:
        ``symbols[i]`` is the element name read when *entering* state ``i``;
        index 0 is the initial state and has no symbol (``None``).
    first:
        States reachable from the initial state (position of the first
        letter of some word).
    follow:
        ``follow[q]`` is the set of positions that may immediately follow
        position ``q`` in some word.
    last:
        Positions at which some word may end.
    nullable:
        Whether the empty word is accepted.
    """

    symbols: list[str | None]
    first: frozenset[int]
    follow: dict[int, frozenset[int]]
    last: frozenset[int]
    nullable: bool

    @property
    def state_count(self) -> int:
        return len(self.symbols)

    def alphabet(self) -> frozenset[str]:
        return frozenset(s for s in self.symbols if s is not None)

    def successors(self, state: int) -> frozenset[int]:
        """Positions reachable in one step (state 0 uses ``first``)."""
        if state == 0:
            return self.first
        return self.follow[state]

    def predecessors(self, state: int) -> frozenset[int]:
        """Positions from which ``state`` is reachable in one step.

        The initial state 0 is included when ``state`` is in ``first``.
        """
        preds = {q for q in range(1, self.state_count) if state in self.follow[q]}
        if state in self.first:
            preds.add(0)
        return frozenset(preds)

    def is_accepting(self, state: int) -> bool:
        if state == 0:
            return self.nullable
        return state in self.last

    # -- classical word acceptance ----------------------------------------
    def accepts(self, word: list[str] | tuple[str, ...]) -> bool:
        current = {0}
        for letter in word:
            nxt: set[int] = set()
            for state in current:
                for succ in self.successors(state):
                    if self.symbols[succ] == letter:
                        nxt.add(succ)
            if not nxt:
                return False
            current = nxt
        return any(self.is_accepting(state) for state in current)

    def transitions(self) -> dict[int, dict[str, frozenset[int]]]:
        """Materialize a ``state -> symbol -> successors`` table."""
        table: dict[int, dict[str, frozenset[int]]] = {}
        for state in range(self.state_count):
            by_symbol: dict[str, set[int]] = {}
            for succ in self.successors(state):
                symbol = self.symbols[succ]
                assert symbol is not None
                by_symbol.setdefault(symbol, set()).add(succ)
            table[state] = {s: frozenset(targets) for s, targets in by_symbol.items()}
        return table


@dataclass
class _Pieces:
    """Intermediate Glushkov data for a subexpression (positions are global)."""

    nullable: bool
    first: frozenset[int] = field(default_factory=frozenset)
    last: frozenset[int] = field(default_factory=frozenset)


def glushkov(regex: Regex) -> NFA:
    """Build the Glushkov position automaton of ``regex``."""
    symbols: list[str | None] = [None]
    follow: dict[int, set[int]] = {}

    def build(node: Regex) -> _Pieces:
        if isinstance(node, Epsilon):
            return _Pieces(nullable=True)
        if isinstance(node, Symbol):
            position = len(symbols)
            symbols.append(node.name)
            follow[position] = set()
            singleton = frozenset({position})
            return _Pieces(nullable=False, first=singleton, last=singleton)
        if isinstance(node, Optional):
            inner = build(node.inner)
            return _Pieces(nullable=True, first=inner.first, last=inner.last)
        if isinstance(node, Star):
            inner = build(node.inner)
            for position in inner.last:
                follow[position] |= inner.first
            return _Pieces(nullable=True, first=inner.first, last=inner.last)
        if isinstance(node, Concat):
            pieces = [build(part) for part in node.parts]
            # follow links into part i+1 come from the lasts of part i, and of
            # earlier parts as long as all intervening parts are nullable.
            for i in range(len(pieces) - 1):
                j = i
                while True:
                    for position in pieces[j].last:
                        follow[position] |= pieces[i + 1].first
                    if j == 0 or not pieces[j].nullable:
                        break
                    j -= 1
            nullable = all(piece.nullable for piece in pieces)
            first: set[int] = set()
            for piece in pieces:
                first |= piece.first
                if not piece.nullable:
                    break
            last: set[int] = set()
            for piece in reversed(pieces):
                last |= piece.last
                if not piece.nullable:
                    break
            return _Pieces(nullable=nullable, first=frozenset(first), last=frozenset(last))
        if isinstance(node, Union):
            pieces = [build(part) for part in node.parts]
            return _Pieces(
                nullable=any(piece.nullable for piece in pieces),
                first=frozenset().union(*(piece.first for piece in pieces)),
                last=frozenset().union(*(piece.last for piece in pieces)),
            )
        raise TypeError(f"unknown regex node: {node!r}")

    pieces = build(regex)
    return NFA(
        symbols=symbols,
        first=pieces.first,
        follow={position: frozenset(targets) for position, targets in follow.items()},
        last=pieces.last,
        nullable=pieces.nullable,
    )
