"""Regular expressions over element-type alphabets.

DTD content models (the right-hand sides of productions ``A -> P(A)``) are
regular expressions over element names.  This package provides their AST
(:mod:`repro.regex.ast`), a parser for the paper's concrete syntax
(:mod:`repro.regex.parser`), Glushkov position automata
(:mod:`repro.regex.nfa`), determinization/minimization
(:mod:`repro.regex.dfa`), and high-level language operations
(:mod:`repro.regex.ops`).

The AST deliberately has no "empty language" constant: every content model a
DTD can express denotes a nonempty language, which several deciders in the
paper rely on (any syntactically occurring symbol can appear in some word).
"""

from repro.regex.ast import (
    Concat,
    Epsilon,
    Optional,
    Regex,
    Star,
    Symbol,
    Union,
    concat,
    epsilon,
    star,
    sym,
    union,
)
from repro.regex.parser import parse_regex
from repro.regex.nfa import NFA, glushkov
from repro.regex.dfa import DFA, determinize, minimize
from repro.regex.ops import (
    enumerate_words,
    language_equal,
    language_subset,
    matches,
    shortest_word,
    shortest_word_containing,
)

__all__ = [
    "Regex", "Epsilon", "Symbol", "Concat", "Union", "Star", "Optional",
    "epsilon", "sym", "concat", "union", "star",
    "parse_regex",
    "NFA", "glushkov",
    "DFA", "determinize", "minimize",
    "matches", "shortest_word", "shortest_word_containing",
    "enumerate_words", "language_subset", "language_equal",
]
