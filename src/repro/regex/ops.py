"""High-level language operations on content models.

These are the primitives the satisfiability deciders lean on:

* :func:`matches` — children-word conformance (`T ⊨ D`, condition (3));
* :func:`shortest_word` — minimal expansions when building witness trees;
* :func:`shortest_word_containing` — a word witnessing that ``B`` can occur
  among the children of an ``A`` element (edges of the DTD graph);
* :func:`enumerate_words` — bounded enumeration driving the bounded-model
  engine of ``sat.bounded``;
* :func:`language_subset` / :func:`language_equal` — used by the
  normalization tests (Proposition 3.3).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator, Sequence

from repro.regex.ast import Regex
from repro.regex.dfa import product, regex_to_dfa
from repro.regex.nfa import NFA, glushkov

_NFA_CACHE: dict[Regex, NFA] = {}


def cached_nfa(regex: Regex) -> NFA:
    """Glushkov automaton with memoization (content models are reused
    heavily by every decider)."""
    nfa = _NFA_CACHE.get(regex)
    if nfa is None:
        nfa = glushkov(regex)
        _NFA_CACHE[regex] = nfa
    return nfa


def matches(regex: Regex, word: Sequence[str]) -> bool:
    """Does ``word`` belong to the language of ``regex``?"""
    return cached_nfa(regex).accepts(tuple(word))


def shortest_word(regex: Regex) -> tuple[str, ...]:
    """A shortest word of the language.

    Content models always denote nonempty languages (there is no empty-
    language constant), so this never fails.
    """
    nfa = cached_nfa(regex)
    if nfa.nullable:
        return ()
    # BFS over states; states are positions so the word is read off the path.
    parents: dict[int, int] = {}
    queue = deque([0])
    seen = {0}
    while queue:
        state = queue.popleft()
        for succ in nfa.successors(state):
            if succ in seen:
                continue
            parents[succ] = state
            if nfa.is_accepting(succ):
                word: list[str] = []
                current = succ
                while current != 0:
                    symbol = nfa.symbols[current]
                    assert symbol is not None
                    word.append(symbol)
                    current = parents[current]
                return tuple(reversed(word))
            seen.add(succ)
            queue.append(succ)
    raise AssertionError("content models always denote a nonempty language")


def shortest_word_containing(regex: Regex, symbol: str) -> tuple[str, ...] | None:
    """A shortest word containing at least one occurrence of ``symbol``,
    or ``None`` when no word of the language contains it.

    For the content-model AST (no empty-language constant) this is
    equivalent to ``symbol in regex.alphabet()``, but the word itself is
    needed to build witness trees (Theorem 4.1's ``Tree(p, D)``).
    """
    nfa = cached_nfa(regex)
    # BFS over (state, seen-symbol?) pairs.
    start = (0, False)
    parents: dict[tuple[int, bool], tuple[tuple[int, bool], str]] = {}
    queue = deque([start])
    seen = {start}
    while queue:
        node = queue.popleft()
        state, found = node
        if found and nfa.is_accepting(state):
            word: list[str] = []
            current = node
            while current != start:
                current, letter = parents[current]
                word.append(letter)
            return tuple(reversed(word))
        for succ in nfa.successors(state):
            letter = nfa.symbols[succ]
            assert letter is not None
            succ_node = (succ, found or letter == symbol)
            if succ_node not in seen:
                seen.add(succ_node)
                parents[succ_node] = (node, letter)
                queue.append(succ_node)
    return None


def enumerate_words(
    regex: Regex,
    max_length: int,
    max_words: int | None = None,
) -> Iterator[tuple[str, ...]]:
    """Yield accepted words in length-lexicographic order, up to
    ``max_length`` (and at most ``max_words`` items if given)."""
    nfa = cached_nfa(regex)
    emitted = 0
    # On-the-fly determinization keyed by the word read so far, so each word
    # is tracked (and emitted) once no matter how many runs produce it.
    frontier: dict[tuple[str, ...], frozenset[int]] = {(): frozenset({0})}
    if nfa.nullable:
        yield ()
        emitted += 1
        if max_words is not None and emitted >= max_words:
            return
    for _ in range(max_length):
        extensions: dict[tuple[str, ...], set[int]] = {}
        for word, states in frontier.items():
            for state in states:
                for succ in nfa.successors(state):
                    letter = nfa.symbols[succ]
                    assert letter is not None
                    extensions.setdefault(word + (letter,), set()).add(succ)
        frontier = {word: frozenset(states) for word, states in extensions.items()}
        if not frontier:
            return
        for word in sorted(frontier):
            if any(nfa.is_accepting(state) for state in frontier[word]):
                yield word
                emitted += 1
                if max_words is not None and emitted >= max_words:
                    return


def language_subset(left: Regex, right: Regex) -> bool:
    """Language inclusion via DFA difference emptiness."""
    alphabet = left.alphabet() | right.alphabet()
    left_dfa = regex_to_dfa(left, alphabet)
    right_dfa = regex_to_dfa(right, alphabet)
    return product(left_dfa, right_dfa, "difference").is_empty()


def language_equal(left: Regex, right: Regex) -> bool:
    return language_subset(left, right) and language_subset(right, left)
