"""repro — a reproduction of Benedikt, Fan & Geerts, *XPath Satisfiability
in the Presence of DTDs* (PODS 2005 / JACM 55(2), 2008).

The package implements the paper's full system surface:

* :mod:`repro.xpath` — the XPath class ``X(↓,↓*,↑,↑*,←,→,←*,→*,∪,[],=,¬)``
  with parser, formal semantics and fragment lattice;
* :mod:`repro.dtd` / :mod:`repro.regex` / :mod:`repro.xmltree` — DTDs,
  content models and document trees;
* :mod:`repro.sat` — one satisfiability decider per upper-bound theorem,
  with :func:`repro.sat.decide` dispatching automatically;
* :mod:`repro.automata` — the two-way alternating selection automata of
  Claim 7.6;
* :mod:`repro.containment` — containment via Proposition 3.2;
* :mod:`repro.reductions` / :mod:`repro.solvers` — every hardness encoding
  with its independent oracle;
* :mod:`repro.workloads` — random workload generation and scaling fits.

Quick use::

    from repro import decide, parse_dtd, parse_query
    dtd = parse_dtd("root r\\nr -> A*\\nA -> eps\\n")
    decide(parse_query("A"), dtd).satisfiable   # True
    decide(parse_query("B"), dtd).satisfiable   # False
"""

from repro.dtd import DTD, parse_dtd
from repro.sat import SatResult, decide
from repro.xmltree import XMLTree, tree
from repro.xpath import parse_query, parse_qualifier

__version__ = "1.0.0"

__all__ = [
    "DTD", "parse_dtd",
    "SatResult", "decide",
    "XMLTree", "tree",
    "parse_query", "parse_qualifier",
    "__version__",
]
