"""Positive Boolean formulas ``B⁺(S)`` (Section 7.3.2).

Formulas are built from atoms (arbitrary hashable payloads), ``true``,
``false``, conjunction and disjunction — negation-free, so they are
monotone: a set of true atoms satisfies a formula iff some subset does.
``dual`` swaps ∧/∨ and true/false (used by ``qtrans(¬q)``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable


class BFormula:
    __slots__ = ()

    def evaluate(self, truth: Callable[[Hashable], bool]) -> bool:
        raise NotImplementedError

    def dual(self) -> "BFormula":
        raise NotImplementedError

    def atoms(self) -> frozenset:
        raise NotImplementedError

    def map_atoms(self, mapping: Callable[[Hashable], Hashable]) -> "BFormula":
        raise NotImplementedError

    def __and__(self, other: "BFormula") -> "BFormula":
        return conj(self, other)

    def __or__(self, other: "BFormula") -> "BFormula":
        return disj(self, other)


@dataclass(frozen=True, repr=False)
class BTrue(BFormula):
    def evaluate(self, truth) -> bool:
        return True

    def dual(self) -> BFormula:
        return BFalse()

    def atoms(self) -> frozenset:
        return frozenset()

    def map_atoms(self, mapping) -> BFormula:
        return self

    def __repr__(self) -> str:
        return "true"


@dataclass(frozen=True, repr=False)
class BFalse(BFormula):
    def evaluate(self, truth) -> bool:
        return False

    def dual(self) -> BFormula:
        return BTrue()

    def atoms(self) -> frozenset:
        return frozenset()

    def map_atoms(self, mapping) -> BFormula:
        return self

    def __repr__(self) -> str:
        return "false"


@dataclass(frozen=True, repr=False)
class BAtom(BFormula):
    payload: Hashable

    def evaluate(self, truth) -> bool:
        return truth(self.payload)

    def dual(self) -> BFormula:
        return self  # atoms are self-dual; only connectives flip

    def atoms(self) -> frozenset:
        return frozenset({self.payload})

    def map_atoms(self, mapping) -> BFormula:
        return BAtom(mapping(self.payload))

    def __repr__(self) -> str:
        return f"<{self.payload!r}>"


@dataclass(frozen=True, repr=False)
class BAnd(BFormula):
    parts: tuple[BFormula, ...]

    def evaluate(self, truth) -> bool:
        return all(part.evaluate(truth) for part in self.parts)

    def dual(self) -> BFormula:
        return BOr(tuple(part.dual() for part in self.parts))

    def atoms(self) -> frozenset:
        return frozenset().union(*(part.atoms() for part in self.parts))

    def map_atoms(self, mapping) -> BFormula:
        return BAnd(tuple(part.map_atoms(mapping) for part in self.parts))

    def __repr__(self) -> str:
        return "(" + " & ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True, repr=False)
class BOr(BFormula):
    parts: tuple[BFormula, ...]

    def evaluate(self, truth) -> bool:
        return any(part.evaluate(truth) for part in self.parts)

    def dual(self) -> BFormula:
        return BAnd(tuple(part.dual() for part in self.parts))

    def atoms(self) -> frozenset:
        return frozenset().union(*(part.atoms() for part in self.parts))

    def map_atoms(self, mapping) -> BFormula:
        return BOr(tuple(part.map_atoms(mapping) for part in self.parts))

    def __repr__(self) -> str:
        return "(" + " | ".join(map(repr, self.parts)) + ")"


def true() -> BFormula:
    return BTrue()


def false() -> BFormula:
    return BFalse()


def atom(payload: Hashable) -> BFormula:
    return BAtom(payload)


def conj(*parts: BFormula) -> BFormula:
    flat: list[BFormula] = []
    for part in parts:
        if isinstance(part, BFalse):
            return BFalse()
        if isinstance(part, BTrue):
            continue
        if isinstance(part, BAnd):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return BTrue()
    if len(flat) == 1:
        return flat[0]
    return BAnd(tuple(flat))


def disj(*parts: BFormula) -> BFormula:
    flat: list[BFormula] = []
    for part in parts:
        if isinstance(part, BTrue):
            return BTrue()
        if isinstance(part, BFalse):
            continue
        if isinstance(part, BOr):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return BFalse()
    if len(flat) == 1:
        return flat[0]
    return BOr(tuple(flat))


def disj_all(parts: Iterable[BFormula]) -> BFormula:
    return disj(*list(parts))
