"""Two-way alternating (selection) automata over words (Section 7.3.2).

A :class:`TwoWayAutomaton` runs over the streamed encodings of
:mod:`repro.xmltree.stream`: letters are ``("open", label, selected)`` and
``("close", label)``.  The transition function maps (state, letter) to a
positive Boolean formula over ``(direction, state)`` atoms with direction
``-1`` (move left), ``0`` (stay) or ``+1`` (move right) — the paper's
``DIR = {↑, ε, ↓}``.

Acceptance of ``(word, position)`` follows the finite-run-forest semantics
via a least fixpoint over configurations ``(position, state)``:

* a configuration is accepted once its transition formula is satisfied by
  already-accepted successor configurations;
* the empty satisfying set is allowed only for accepting states (leaves of
  the run forest must carry accepting states).

Because formulas are monotone the fixpoint is exact, and it runs in time
polynomial in ``|word| · |Q| ·`` formula size — the workhorse behind the
Claim 7.6 validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.automata.boolformula import BFalse, BFormula

Letter = tuple
State = Hashable
DeltaFn = Callable[[State, Letter], BFormula]


@dataclass
class TwoWayAutomaton:
    """``(Q, Σ_sel, θ0, δ, F, C)`` with a functional transition map.

    ``critical`` (the set ``C``) matters only for selection automata — the
    states whose transitions inspect the selection mark; path composition
    re-wires them (see :mod:`repro.automata.translate`).
    """

    states: tuple[State, ...]
    initial: BFormula                      # over plain state atoms
    delta: DeltaFn
    accepting: frozenset
    critical: frozenset = field(default_factory=frozenset)

    def remap(self, prefix: str) -> "TwoWayAutomaton":
        """A disjoint copy with states tagged by ``prefix``."""

        def rename(state: State) -> State:
            return (prefix, state)

        old_delta = self.delta

        def delta(state: State, letter: Letter) -> BFormula:
            tag, inner = state
            if tag != prefix:
                return BFalse()
            return old_delta(inner, letter).map_atoms(
                lambda payload: (payload[0], rename(payload[1]))
            )

        return TwoWayAutomaton(
            states=tuple(rename(state) for state in self.states),
            initial=self.initial.map_atoms(rename),
            delta=delta,
            accepting=frozenset(rename(state) for state in self.accepting),
            critical=frozenset(rename(state) for state in self.critical),
        )


BOS: Letter = ("bos",)
EOS: Letter = ("eos",)


def accepts(automaton: TwoWayAutomaton, word: Sequence[Letter], position: int) -> bool:
    """Finite-run acceptance of ``(word, position)`` (least fixpoint).

    The word is padded with begin/end markers so that moves off either end
    read an explicit boundary letter.  Base automata reject boundaries with
    honest ``false`` transitions, which dualization (negation) correctly
    turns into ``true`` — without the markers, ``¬(←)`` at the root could
    never hold.
    """
    if not 0 <= position < len(word):
        raise IndexError(position)
    word = [BOS, *word, EOS]
    position += 1
    length = len(word)
    accepted: set[tuple[int, State]] = set()

    # Precompute formulas per configuration lazily; iterate to fixpoint.
    formulas: dict[tuple[int, State], BFormula] = {}

    def formula(config: tuple[int, State]) -> BFormula:
        cached = formulas.get(config)
        if cached is None:
            index, state = config
            cached = automaton.delta(state, word[index])
            formulas[config] = cached
        return cached

    def truth_factory(index: int):
        def truth(payload) -> bool:
            direction, state = payload
            target = index + direction
            if not 0 <= target < length:
                return False
            return (target, state) in accepted

        return truth

    def empty_truth(_payload) -> bool:
        return False

    accepted_at: dict[int, int] = {}

    def neighbour_accepted(index: int) -> bool:
        """Some accepted configuration reachable in one move — the paper's
        run definition lets a satisfying set S contain *any* pairs when the
        formula is monotonically true, so a vacuously-true transition at a
        non-accepting state can delegate to any accepted neighbour."""
        return any(
            accepted_at.get(index + direction, 0) > 0
            for direction in (-1, 0, 1)
            if 0 <= index + direction < length
        )

    changed = True
    while changed:
        changed = False
        for index in range(length):
            truth = truth_factory(index)
            for state in automaton.states:
                config = (index, state)
                if config in accepted:
                    continue
                current = formula(config)
                if isinstance(current, BFalse):
                    continue
                if not current.evaluate(truth):
                    continue
                # leaves (empty satisfying set) need accepting states
                if state not in automaton.accepting:
                    if current.evaluate(empty_truth) and not neighbour_accepted(index):
                        continue
                accepted.add(config)
                accepted_at[index] = accepted_at.get(index, 0) + 1
                changed = True

    def initial_truth(payload) -> bool:
        return (position, payload) in accepted

    return automaton.initial.evaluate(initial_truth)
