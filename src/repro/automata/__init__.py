"""Two-way alternating (selection) automata over streamed documents —
the proof machinery of Theorem 7.4 (Claim 7.6, Figures 10–12).

* :mod:`repro.automata.boolformula` — positive Boolean formulas ``B⁺(S)``
  with evaluation and dualization;
* :mod:`repro.automata.twa` — 2WAA/2WASA and finite-run acceptance on a
  word (least fixpoint);
* :mod:`repro.automata.translate` — ``trans``/``qtrans``: compositional
  translation of ``X(↓,↑,↓*,↑*,←,→,←*,→*,∪,[],¬)`` expressions into
  2WASAs that define the same binary/unary relations on streamed trees.

The acceptance fixpoint gives a second, independent implementation of the
XPath semantics; the test suite checks it against the direct evaluator on
random documents, which is the executable content of Claim 7.6.
"""

from repro.automata.boolformula import BFormula, atom, conj, disj, false, true
from repro.automata.twa import TwoWayAutomaton, accepts
from repro.automata.translate import qtrans, trans

__all__ = [
    "BFormula", "atom", "conj", "disj", "true", "false",
    "TwoWayAutomaton", "accepts",
    "trans", "qtrans",
]
