"""``trans`` / ``qtrans`` — XPath expressions to two-way alternating
selection automata (Claim 7.6, Figures 10–12).

``trans(p, depth)`` builds a 2WASA defining the same *binary* relation as
``p`` on trees of document depth ≤ ``depth``: it accepts
``(stream(T, m), pos(n))`` iff ``T ⊨ p(n, m)``.  ``qtrans(q, depth)``
builds a 2WAA for the *unary* relation of qualifier ``q``.

The construction is compositional exactly as in the paper:

* one depth-counting gadget per axis (the ``q0..qn`` state families of
  Figure 10), with the *critical* states — those whose transitions inspect
  the selection mark — singled out;
* ``p1/p2`` re-wires the critical accepts of ``p1`` to launch ``p2``'s
  initial formula at the selected position;
* ``p[q]`` conjoins ``qtrans(q)``'s initial formula onto the critical
  accepts; ``p1 ∪ p2`` is disjoint union; ``¬q`` dualizes transitions and
  complements the accepting set.

The depth bound mirrors the paper's restriction to nonrecursive DTDs: the
axis gadgets count nesting levels with finitely many states.
"""

from __future__ import annotations

from typing import Callable

from repro.automata.boolformula import (
    BFormula,
    atom,
    conj,
    disj,
    false,
    true,
)
from repro.automata.twa import Letter, State, TwoWayAutomaton
from repro.errors import FragmentError
from repro.xpath import ast
from repro.xpath.ast import Path, Qualifier

_FINAL = "final"


def _is_open(letter: Letter) -> bool:
    return letter[0] == "open"


def _is_selected(letter: Letter) -> bool:
    return letter[0] == "open" and bool(letter[2])


def _label(letter: Letter) -> str:
    return letter[1]


def _accept_option(letter: Letter, label_filter: str | None) -> BFormula:
    """Accept the current (open) position when it is selected and matches
    the label filter: jump to the final state in place."""
    if not _is_open(letter) or not _is_selected(letter):
        return false()
    if label_filter is not None and _label(letter) != label_filter:
        return false()
    return atom((0, _FINAL))


def _axis_automaton(name: str, delta: Callable[[State, Letter], BFormula],
                    states: list, start: State, critical: list) -> TwoWayAutomaton:
    def full_delta(state: State, letter: Letter) -> BFormula:
        if letter[0] not in ("open", "close"):
            return false()  # word boundary: base automata reject here
        if state == _FINAL:
            return true()
        return delta(state, letter)

    return TwoWayAutomaton(
        states=tuple(states + [_FINAL]),
        initial=atom(start),
        delta=full_delta,
        accepting=frozenset({_FINAL}),
        critical=frozenset(critical),
    ).remap(name)


def _child_axis(depth: int, label_filter: str | None) -> TwoWayAutomaton:
    """``↓`` (or a label step): accept a selected child."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            if _is_open(letter):
                return atom((+1, ("scan", 1)))
            return false()
        if _is_open(letter):
            options = []
            if level == 1:
                options.append(_accept_option(letter, label_filter))
            if level < depth + 1:
                options.append(atom((+1, ("scan", level + 1))))
            return disj(*options)
        if level >= 2:
            return atom((+1, ("scan", level - 1)))
        return false()  # close at level 1: subtree exhausted

    states = [("start", 0)] + [("scan", level) for level in range(1, depth + 2)]
    return _axis_automaton(
        f"child[{label_filter}]", delta, states, ("start", 0), [("scan", 1)]
    )


def _desc_or_self_axis(depth: int) -> TwoWayAutomaton:
    """``↓*``: accept the context node or any descendant."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            if _is_open(letter):
                return disj(_accept_option(letter, None), atom((+1, ("scan", 1))))
            return false()
        if _is_open(letter):
            options = [_accept_option(letter, None)]
            if level < depth + 1:
                options.append(atom((+1, ("scan", level + 1))))
            return disj(*options)
        if level >= 2:
            return atom((+1, ("scan", level - 1)))
        return false()

    states = [("start", 0)] + [("scan", level) for level in range(1, depth + 2)]
    return _axis_automaton(
        "desc-or-self", delta, states, ("start", 0),
        [("start", 0)] + [("scan", level) for level in range(1, depth + 2)],
    )


def _self_axis() -> TwoWayAutomaton:
    def delta(state: State, letter: Letter) -> BFormula:
        return _accept_option(letter, None)

    return _axis_automaton("self", delta, [("start", 0)], ("start", 0), [("start", 0)])


def _parent_axis(depth: int) -> TwoWayAutomaton:
    """``↑``: move left to the first unmatched open tag."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            return atom((-1, ("back", 1)))
        if _is_open(letter):
            if level == 1:
                return _accept_option(letter, None)
            return atom((-1, ("back", level - 1)))
        if level < depth + 1:
            return atom((-1, ("back", level + 1)))
        return false()

    states = [("start", 0)] + [("back", level) for level in range(1, depth + 2)]
    return _axis_automaton(
        "parent", delta, states, ("start", 0), [("back", 1)]
    )


def _anc_or_self_axis(depth: int) -> TwoWayAutomaton:
    """``↑*``: the context node or any unmatched open to the left."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            return disj(_accept_option(letter, None), atom((-1, ("back", 1))))
        if _is_open(letter):
            if level == 1:
                return disj(_accept_option(letter, None), atom((-1, ("back", 1))))
            return atom((-1, ("back", level - 1)))
        if level < depth + 1:
            return atom((-1, ("back", level + 1)))
        return false()

    states = [("start", 0)] + [("back", level) for level in range(1, depth + 2)]
    return _axis_automaton(
        "anc-or-self", delta, states, ("start", 0),
        [("start", 0), ("back", 1)],
    )


def _right_sibling_axis(depth: int, reflexive: bool) -> TwoWayAutomaton:
    """``→`` (immediate) or ``→*`` (self-or-following)."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            if not _is_open(letter):
                return false()
            options = [atom((+1, ("skip", 1)))]
            if reflexive:
                options.append(_accept_option(letter, None))
            return disj(*options)
        if kind == "skip":
            if _is_open(letter):
                if level < depth + 1:
                    return atom((+1, ("skip", level + 1)))
                return false()
            if level >= 2:
                return atom((+1, ("skip", level - 1)))
            return atom((+1, ("check", 0)))  # consumed the matching close
        # kind == "check": at the position after a subtree
        if _is_open(letter):
            options = [_accept_option(letter, None)]
            if reflexive:
                options.append(atom((+1, ("skip", 1))))
            return disj(*options)
        return false()  # parent's close: no further siblings

    states = (
        [("start", 0), ("check", 0)]
        + [("skip", level) for level in range(1, depth + 2)]
    )
    name = "self-or-right" if reflexive else "right"
    return _axis_automaton(
        name, delta, states, ("start", 0),
        [("start", 0), ("check", 0)] if reflexive else [("check", 0)],
    )


def _left_sibling_axis(depth: int, reflexive: bool) -> TwoWayAutomaton:
    """``←`` (immediate) or ``←*`` (self-or-preceding)."""

    def delta(state: State, letter: Letter) -> BFormula:
        kind, level = state
        if kind == "start":
            if not _is_open(letter):
                return false()
            options = [atom((-1, ("peek", 0)))]
            if reflexive:
                options.append(_accept_option(letter, None))
            return disj(*options)
        if kind == "peek":
            # the letter left of a subtree: open = parent (no sibling)
            if _is_open(letter):
                return false()
            return atom((-1, ("match", 1)))
        # kind == "match": `level` unmatched closes pending
        if _is_open(letter):
            if level == 1:
                options = [_accept_option(letter, None)]
                if reflexive:
                    options.append(atom((-1, ("peek", 0))))
                return disj(*options)
            return atom((-1, ("match", level - 1)))
        if level < depth + 1:
            return atom((-1, ("match", level + 1)))
        return false()

    states = (
        [("start", 0), ("peek", 0)]
        + [("match", level) for level in range(1, depth + 2)]
    )
    name = "self-or-left" if reflexive else "left"
    return _axis_automaton(
        name, delta, states, ("start", 0),
        [("start", 0), ("match", 1)] if reflexive else [("match", 1)],
    )


# ---------------------------------------------------------------------------
# Compositional translation
# ---------------------------------------------------------------------------

_counter = [0]


def _fresh(tag: str) -> str:
    _counter[0] += 1
    return f"{tag}#{_counter[0]}"


def trans(path: Path, depth: int) -> TwoWayAutomaton:
    """The 2WASA of a path expression (documents of depth ≤ ``depth``)."""
    if isinstance(path, ast.Empty):
        return _self_axis().remap(_fresh("e"))
    if isinstance(path, ast.Label):
        return _child_axis(depth, path.name).remap(_fresh("l"))
    if isinstance(path, ast.Wildcard):
        return _child_axis(depth, None).remap(_fresh("w"))
    if isinstance(path, ast.DescOrSelf):
        return _desc_or_self_axis(depth).remap(_fresh("d"))
    if isinstance(path, ast.Parent):
        return _parent_axis(depth).remap(_fresh("p"))
    if isinstance(path, ast.AncOrSelf):
        return _anc_or_self_axis(depth).remap(_fresh("a"))
    if isinstance(path, ast.RightSib):
        return _right_sibling_axis(depth, reflexive=False).remap(_fresh("r"))
    if isinstance(path, ast.RightSibStar):
        return _right_sibling_axis(depth, reflexive=True).remap(_fresh("rs"))
    if isinstance(path, ast.LeftSib):
        return _left_sibling_axis(depth, reflexive=False).remap(_fresh("lf"))
    if isinstance(path, ast.LeftSibStar):
        return _left_sibling_axis(depth, reflexive=True).remap(_fresh("ls"))
    if isinstance(path, ast.Union):
        return _union(trans(path.left, depth), trans(path.right, depth))
    if isinstance(path, ast.Seq):
        return _compose(trans(path.left, depth), trans(path.right, depth))
    if isinstance(path, ast.Filter):
        return _filtered(trans(path.path, depth), qtrans(path.qualifier, depth))
    raise FragmentError(f"trans cannot handle {path!r} (data values are out of scope)")


def qtrans(qualifier: Qualifier, depth: int) -> TwoWayAutomaton:
    """The 2WAA of a qualifier (selection marks ignored)."""
    if isinstance(qualifier, ast.PathExists):
        return _ignore_selection(trans(qualifier.path, depth))
    if isinstance(qualifier, ast.LabelTest):
        return _label_test(qualifier.name).remap(_fresh("t"))
    if isinstance(qualifier, ast.And):
        left = qtrans(qualifier.left, depth)
        right = qtrans(qualifier.right, depth)
        return _boolean_combo(left, right, conj)
    if isinstance(qualifier, ast.Or):
        left = qtrans(qualifier.left, depth)
        right = qtrans(qualifier.right, depth)
        return _boolean_combo(left, right, disj)
    if isinstance(qualifier, ast.Not):
        return _negate(qtrans(qualifier.inner, depth))
    raise FragmentError(
        f"qtrans cannot handle {qualifier!r} (data values are out of scope)"
    )


def _label_test(name: str) -> TwoWayAutomaton:
    def delta(state: State, letter: Letter) -> BFormula:
        if _is_open(letter) and _label(letter) == name:
            return atom((0, _FINAL))
        return false()

    return _axis_automaton(f"lab={name}", delta, [("start", 0)], ("start", 0), [])


def _union(left: TwoWayAutomaton, right: TwoWayAutomaton) -> TwoWayAutomaton:
    left = left.remap(_fresh("u"))
    right = right.remap(_fresh("u"))
    return TwoWayAutomaton(
        states=left.states + right.states,
        initial=disj(left.initial, right.initial),
        delta=_merged_delta(left, right),
        accepting=left.accepting | right.accepting,
        critical=left.critical | right.critical,
    )


def _merged_delta(left: TwoWayAutomaton, right: TwoWayAutomaton):
    left_states = set(left.states)

    def delta(state: State, letter: Letter) -> BFormula:
        if state in left_states:
            return left.delta(state, letter)
        return right.delta(state, letter)

    return delta


def _compose(first: TwoWayAutomaton, second: TwoWayAutomaton) -> TwoWayAutomaton:
    """``p1/p2``: at ``p1``'s critical accepts, launch ``p2`` in place."""
    first = first.remap(_fresh("c"))
    second = second.remap(_fresh("c"))
    second_initial = second.initial.map_atoms(lambda state: (0, state))
    first_states = set(first.states)
    criticals = first.critical

    def delta(state: State, letter: Letter) -> BFormula:
        if state not in first_states:
            return second.delta(state, letter)
        if state in criticals and _is_open(letter):
            # the paper's δ'': evaluate p1's transition as if unselected,
            # plus — where p1 would accept a selected node — conjoin p2's
            # start here (δ(q,(N,false)) ∨ (δ(q,(N,true)) ∧ θ0^ε))
            unselected = ("open", letter[1], False)
            selected = ("open", letter[1], True)
            base = first.delta(state, unselected)
            handover = conj(first.delta(state, selected), second_initial)
            return disj(base, handover)
        if _is_open(letter):
            # non-critical states ignore the selection mark
            return first.delta(state, ("open", letter[1], False))
        return first.delta(state, letter)

    return TwoWayAutomaton(
        states=first.states + second.states,
        initial=first.initial,
        delta=delta,
        accepting=second.accepting,
        critical=second.critical,
    )


def _filtered(base: TwoWayAutomaton, check: TwoWayAutomaton) -> TwoWayAutomaton:
    """``p[q]``: conjoin the qualifier automaton at selected accepts."""
    base = base.remap(_fresh("f"))
    check = check.remap(_fresh("f"))
    check_initial = check.initial.map_atoms(lambda state: (0, state))
    base_states = set(base.states)

    # the paper's δ'': on the *selected* letter, critical transitions
    # additionally demand the qualifier automaton here
    # (δ(q,(N,true)) ∧ θ0^ε; all other transitions unchanged)
    def delta(state: State, letter: Letter) -> BFormula:
        if state not in base_states:
            return check.delta(state, letter)
        if state in base.critical and _is_selected(letter):
            return conj(base.delta(state, letter), check_initial)
        return base.delta(state, letter)

    return TwoWayAutomaton(
        states=base.states + check.states,
        initial=base.initial,
        delta=delta,
        accepting=base.accepting | check.accepting,
        critical=base.critical,
    )


def _ignore_selection(automaton: TwoWayAutomaton) -> TwoWayAutomaton:
    """``qtrans(p)``: treat every node as unselected-equivalent (the
    qualifier only asks for existence)."""
    inner = automaton.remap(_fresh("q"))

    def delta(state: State, letter: Letter) -> BFormula:
        if _is_open(letter):
            return disj(
                inner.delta(state, ("open", letter[1], False)),
                inner.delta(state, ("open", letter[1], True)),
            )
        return inner.delta(state, letter)

    return TwoWayAutomaton(
        states=inner.states,
        initial=inner.initial,
        delta=delta,
        accepting=inner.accepting,
        critical=frozenset(),
    )


def _boolean_combo(left: TwoWayAutomaton, right: TwoWayAutomaton, combine) -> TwoWayAutomaton:
    left = left.remap(_fresh("b"))
    right = right.remap(_fresh("b"))
    return TwoWayAutomaton(
        states=left.states + right.states,
        initial=combine(left.initial, right.initial),
        delta=_merged_delta(left, right),
        accepting=left.accepting | right.accepting,
        critical=frozenset(),
    )


def _negate(automaton: TwoWayAutomaton) -> TwoWayAutomaton:
    """``¬q``: dualize the initial condition and every transition, and
    complement the accepting set (Section 7.3.3, case 8)."""
    inner = automaton.remap(_fresh("n"))

    def delta(state: State, letter: Letter) -> BFormula:
        return inner.delta(state, letter).dual()

    return TwoWayAutomaton(
        states=inner.states,
        initial=inner.initial.dual(),
        delta=delta,
        accepting=frozenset(inner.states) - inner.accepting,
        critical=frozenset(),
    )
