"""Slow-query log: over-threshold jobs dumped with full context.

"Why was job #4812 slow" needs more than a latency histogram: the
answer lives in the job's span tree (which lane, how long in queue, did
prepare run, which chain member burned the time) and in the plan that
routed it.  :class:`SlowQueryLog` captures exactly that pair for every
job whose wall latency crosses the threshold: the finished trace record
plus the plan's serialized form and its ``repro explain`` text.

Entries are kept in a bounded ring (newest win), optionally appended to
a JSONL file, and each one emits a ``repro.slowlog`` warning through
structured logging, so a deployment sees slow queries in its ordinary
log stream without parsing trace files.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any

from repro.obs.log import get_logger

_LOG = get_logger("repro.slowlog")

DEFAULT_THRESHOLD_MS = 250.0
DEFAULT_CAPACITY = 256


class SlowQueryLog:
    """Collect trace records of jobs slower than ``threshold_ms``."""

    def __init__(
        self,
        threshold_ms: float = DEFAULT_THRESHOLD_MS,
        path: str | None = None,
        capacity: int = DEFAULT_CAPACITY,
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be non-negative, got {threshold_ms}"
            )
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.threshold_ms = threshold_ms
        self.path = path
        self.count = 0
        self._ring: "deque[dict[str, Any]]" = deque(maxlen=capacity)
        self._handle = open(path, "w") if path is not None else None

    def offer(self, record: dict[str, Any], plan=None) -> bool:
        """Consider one finished trace record; keeps it (and returns
        True) iff its ``elapsed_ms`` meets the threshold."""
        elapsed_ms = float(record.get("elapsed_ms", 0.0))
        if elapsed_ms < self.threshold_ms:
            return False
        entry = dict(record)
        if plan is not None:
            entry["plan"] = plan.to_dict()
            entry["explain"] = plan.explain()
        self.count += 1
        self._ring.append(entry)
        if self._handle is not None:
            self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
            self._handle.flush()
        _LOG.warning(
            "slow query %s (%.1fms >= %.1fms): %r via %s",
            record.get("trace_id", "?"), elapsed_ms, self.threshold_ms,
            record.get("query", ""), record.get("route", "?"),
        )
        return True

    def entries(self) -> list[dict[str, Any]]:
        return list(self._ring)

    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
