"""Span tracer: per-job causality across planner, lanes, and chains.

Every job entering :meth:`~repro.engine.batch.BatchEngine.run` gets a
trace ID at intake; the engine attaches spans as the job moves through
the pipeline — ``canonicalize``, ``plan`` (build vs cache hit),
``route``, ``cache``/``coalesced`` for the short-circuit paths,
``execute`` for inline decisions, and ``chunk`` for pooled ones.  A
``chunk`` span carries the scheduling facts (lane ID, enqueue→absorb
dwell, DTD ship, runtime-context hit, spill, retry) and holds the
lane-side children: a ``prepare`` span for shared setup and one
``attempt:<decider>`` span per decider-chain member with its verdict and
latency.  Lane-side timings travel home inside
:class:`~repro.engine.executors.ChunkOutcome` / the plan's
:class:`~repro.sat.planner.ExecutionTrace` attempts, and the engine's
exactly-once absorb (bookkeeping popped on arrival) guarantees one
finished span tree per job even when a worker death forces a chunk
retry.

A :class:`Tracer` fans finished traces out to sinks —
:class:`JsonlTraceSink` is the ``--trace-out`` JSONL event stream,
:class:`ListSink` keeps records in memory for tests and benchmarks —
and offers each to an optional slow-query log
(:class:`~repro.obs.slowlog.SlowQueryLog`).  ``repro trace`` renders
the JSONL back into span trees (:func:`render_trace_record`).
"""

from __future__ import annotations

import json
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Iterable

#: spans whose status is not "ok" render flagged and count as failures
FAILED = "failed"
OK = "ok"


@dataclass
class Span:
    """One timed step in a job's lifecycle.

    ``start_ms`` is the offset from the trace's begin time; a span whose
    timing is unknown (a pure event, e.g. a route choice) keeps both
    fields at zero.
    """

    name: str
    start_ms: float = 0.0
    ms: float = 0.0
    status: str = OK
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"name": self.name, "ms": round(self.ms, 4)}
        if self.start_ms:
            record["start_ms"] = round(self.start_ms, 4)
        if self.status != OK:
            record["status"] = self.status
        if self.attrs:
            record["attrs"] = dict(self.attrs)
        if self.children:
            record["children"] = [child.to_dict() for child in self.children]
        return record

    @classmethod
    def from_dict(cls, record: dict[str, Any]) -> "Span":
        return cls(
            name=str(record.get("name", "?")),
            start_ms=float(record.get("start_ms", 0.0)),
            ms=float(record.get("ms", 0.0)),
            status=str(record.get("status", OK)),
            attrs=dict(record.get("attrs", {})),
            children=[
                cls.from_dict(child) for child in record.get("children", [])
            ],
        )


def attempt_spans(
    attempts: Iterable[tuple[str, float, str]], start_ms: float = 0.0
) -> list[Span]:
    """Child spans for a plan execution's decider-chain attempts
    (``ExecutionTrace.attempts``): one ``attempt:<decider>`` per member,
    laid out sequentially — their summed ``ms`` equals the trace's
    ``elapsed_ms``, i.e. the latency telemetry records for the job.
    Each span carries the decider's kernel ``backend`` tag so traces show
    which representation (object vs bitset) the cost model routed to."""
    from repro.sat.registry import decider_backend

    spans = []
    offset = start_ms
    for decider, elapsed_ms, outcome in attempts:
        spans.append(Span(
            name=f"attempt:{decider}",
            start_ms=offset,
            ms=elapsed_ms,
            status=FAILED if outcome == FAILED else OK,
            attrs={"verdict": outcome, "backend": decider_backend(decider)},
        ))
        offset += elapsed_ms
    return spans


class JobTrace:
    """One job's in-flight trace: identity plus accumulated spans."""

    __slots__ = (
        "trace_id", "job_id", "query", "schema", "fingerprint",
        "spans", "finished", "_t0",
    )

    def __init__(
        self,
        trace_id: str,
        job_id: str,
        query: str,
        schema: str | None,
        fingerprint: str | None,
    ) -> None:
        self.trace_id = trace_id
        self.job_id = job_id
        self.query = query
        self.schema = schema
        self.fingerprint = fingerprint
        self.spans: list[Span] = []
        self.finished = False
        self._t0 = time.perf_counter()

    def elapsed_ms(self) -> float:
        return (time.perf_counter() - self._t0) * 1e3

    def span(
        self,
        name: str,
        ms: float = 0.0,
        status: str = OK,
        attrs: dict[str, Any] | None = None,
        children: list[Span] | None = None,
    ) -> Span:
        """Append a top-level span that just ended (``start_ms`` is
        back-dated by ``ms`` from now)."""
        span = Span(
            name=name,
            start_ms=max(0.0, self.elapsed_ms() - ms),
            ms=ms,
            status=status,
            attrs=attrs or {},
            children=children or [],
        )
        self.spans.append(span)
        return span


class ListSink:
    """In-memory sink (tests, benchmarks)."""

    def __init__(self) -> None:
        self.records: list[dict[str, Any]] = []

    def emit(self, record: dict[str, Any]) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlTraceSink:
    """The ``--trace-out FILE`` exporter: one JSON object per finished
    trace, flushed per record so a crashed run still leaves every
    completed trace on disk."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = open(path, "w")
        self.emitted = 0

    def emit(self, record: dict[str, Any]) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        self.emitted += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class Tracer:
    """Mints trace IDs at intake and fans finished traces out to sinks.

    ``begin``/``finish`` bracket one job; ``finish`` is idempotent (a
    second finish of the same trace is counted, not re-emitted), and the
    ``started``/``finished`` counters let tests assert the no-orphans
    invariant: every begun trace is finished exactly once.
    """

    def __init__(self, sinks: Iterable[Any] = (), slow_log=None) -> None:
        self.sinks = list(sinks)
        self.slow_log = slow_log
        self.started = 0
        self.finished = 0
        self.duplicate_finishes = 0
        self._run = uuid.uuid4().hex[:8]
        self._sequence = 0

    def begin(
        self,
        job_id: str,
        query: str,
        schema: str | None = None,
        fingerprint: str | None = None,
    ) -> JobTrace:
        self._sequence += 1
        self.started += 1
        return JobTrace(
            trace_id=f"{self._run}-{self._sequence:06d}",
            job_id=job_id,
            query=query,
            schema=schema,
            fingerprint=fingerprint,
        )

    def finish(
        self,
        trace: JobTrace,
        verdict: str,
        route: str,
        plan=None,
    ) -> dict[str, Any] | None:
        """Seal ``trace`` and emit its record; returns the record, or
        ``None`` for a duplicate finish (already sealed)."""
        if trace.finished:
            self.duplicate_finishes += 1
            return None
        trace.finished = True
        self.finished += 1
        record: dict[str, Any] = {
            "trace_id": trace.trace_id,
            "job_id": trace.job_id,
            "query": trace.query,
            "schema": trace.schema,
            "fingerprint": trace.fingerprint,
            "verdict": verdict,
            "route": route,
            "elapsed_ms": round(trace.elapsed_ms(), 4),
            "spans": [span.to_dict() for span in trace.spans],
        }
        for sink in self.sinks:
            sink.emit(record)
        if self.slow_log is not None:
            self.slow_log.offer(record, plan=plan)
        return record

    def register_metrics(self, registry) -> None:
        registry.counter(
            "repro_traces_started_total", "traces begun at job intake"
        ).inc(self.started)
        registry.counter(
            "repro_traces_finished_total", "trace span trees completed"
        ).inc(self.finished)
        if self.slow_log is not None:
            registry.counter(
                "repro_slow_queries_total",
                "jobs over the slow-query latency threshold",
            ).inc(self.slow_log.count)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
        if self.slow_log is not None:
            self.slow_log.close()


def read_trace_file(path: str) -> list[dict[str, Any]]:
    """Parse a ``--trace-out`` JSONL file; blank lines are skipped and a
    malformed line raises ``ValueError`` naming its line number."""
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{number}: not JSON ({error})") from None
            if isinstance(record, dict):
                records.append(record)
    return records


def _span_line(span: dict[str, Any], indent: int) -> str:
    attrs = span.get("attrs", {})
    rendered_attrs = " ".join(
        f"{name}={value}" for name, value in sorted(attrs.items())
    )
    flag = " [FAILED]" if span.get("status", OK) != OK else ""
    head = "  " * indent + span.get("name", "?")
    tail = f"{span.get('ms', 0.0):.3f}ms"
    middle = f" {rendered_attrs}" if rendered_attrs else ""
    return f"{head}{middle}  {tail}{flag}"


def _walk_spans(spans: list[dict[str, Any]], indent: int, lines: list[str]) -> None:
    for span in spans:
        lines.append(_span_line(span, indent))
        _walk_spans(span.get("children", []), indent + 1, lines)


def render_trace_record(record: dict[str, Any]) -> str:
    """Human-readable span tree of one trace record (``repro trace``)."""
    schema = record.get("schema")
    header = (
        f"trace {record.get('trace_id', '?')} job={record.get('job_id', '?')!r} "
        f"verdict={record.get('verdict', '?')} route={record.get('route', '?')} "
        f"elapsed={record.get('elapsed_ms', 0.0):.3f}ms"
        + (f" schema={schema}" if schema else "")
    )
    lines = [header, f"  query: {record.get('query', '')}"]
    _walk_spans(record.get("spans", []), 1, lines)
    return "\n".join(lines)
