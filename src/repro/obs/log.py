"""Structured logging for the repro engine.

Everything under the ``repro`` logger namespace: state-dir corruption
warnings (:mod:`repro.engine.state`), executor degrade events (lane
deaths and respawns, :mod:`repro.engine.executors`), and the slow-query
log's over-threshold notices.  Before this module those surfaced as
ad-hoc ``warnings`` lists the caller could silently drop; now they are
ordinary :mod:`logging` records a deployment can route, filter, and
timestamp like any other service log.

:func:`setup_logging` is what the CLI calls (``--log-level``); library
users may call it too, or attach their own handlers to the ``repro``
logger.  Without any setup, warnings still reach ``sys.stderr`` through
logging's last-resort handler — a corrupt state file is never silent.
"""

from __future__ import annotations

import logging
import sys

#: the root of the engine's logger namespace
ROOT_LOGGER = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

LOG_FORMAT = "%(levelname)s %(name)s: %(message)s"


class _StderrHandler(logging.StreamHandler):
    """A stream handler bound to *current* ``sys.stderr`` at emit time.

    ``logging.StreamHandler()`` captures ``sys.stderr`` once, at
    construction — under pytest's ``capsys`` (or any stderr redirection)
    that reference goes stale and log output silently bypasses the
    capture.  Resolving the stream per record keeps CLI warnings visible
    wherever stderr currently points.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self):
        return sys.stderr

    @stream.setter
    def stream(self, value) -> None:  # StreamHandler's ctor assigns; ignore
        pass


def coerce_level(level: str | int) -> int:
    """``"debug"``/``"info"``/... (case-insensitive) or a numeric level."""
    if isinstance(level, int):
        return level
    try:
        return _LEVELS[level.strip().lower()]
    except KeyError:
        raise ValueError(
            f"unknown log level {level!r} (expected one of {sorted(_LEVELS)})"
        ) from None


def setup_logging(level: str | int = "warning", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger: one handler writing to stderr (or
    ``stream``), idempotent — calling again replaces the handler this
    function installed, never ones attached by the embedding
    application."""
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(coerce_level(level))
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            logger.removeHandler(handler)
    handler = _StderrHandler() if stream is None else logging.StreamHandler(stream)
    handler._repro_obs_handler = True
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    logger.addHandler(handler)
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``get_logger("engine")``
    and ``get_logger("repro.engine")`` are the same logger)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")
