"""Unified metrics registry: one namespace over the engine's stat silos.

The engine accumulates numbers in three unrelated shapes —
:class:`~repro.engine.batch.EngineStats` counters,
:class:`~repro.sat.telemetry.PlanStats` histogram rows, and
:class:`~repro.sat.costmodel.CostModel` cells — plus the executor
layer's lane-health figures.  Each of those now *registers into* a
:class:`MetricsRegistry` (``register_metrics(registry)`` hooks), which
renders the whole set two ways:

* :meth:`MetricsRegistry.as_dict` — nested JSON for machine consumers
  (``repro stats --json``);
* :meth:`MetricsRegistry.render_prometheus` — the Prometheus text
  exposition format, written as a textfile snapshot into the engine's
  state dir (``metrics.prom``) on every ``save_state``, ready for a
  node-exporter textfile collector.

Instruments are snapshot-oriented: the engine builds a fresh registry
from its current totals when asked, so counters here carry totals, not
deltas, and there is no locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _render_labels(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"'
        for name, value in sorted(merged.items())
    )
    return "{" + inner + "}"


@dataclass
class Counter:
    """A monotonically accumulated total."""

    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value."""

    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram (finite upper edges plus one overflow).

    ``observe`` bins live values; :meth:`load` adopts pre-aggregated
    per-bucket counts (the shape :class:`~repro.sat.telemetry.PlanStats`
    persists), so telemetry rows map onto Prometheus histograms without
    replaying observations.
    """

    def __init__(self, edges: Iterable[float]):
        self.edges = tuple(float(edge) for edge in edges)
        if not self.edges or any(
            b <= a for a, b in zip(self.edges, self.edges[1:])
        ):
            raise ValueError(f"histogram edges must be increasing: {self.edges}")
        self.buckets = [0] * (len(self.edges) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.edges)
        for position, edge in enumerate(self.edges):
            if value <= edge:
                index = position
                break
        self.buckets[index] += 1
        self.total += value
        self.count += 1

    def load(self, buckets: Iterable[int], total: float, count: int) -> None:
        """Adopt pre-binned counts (must match this histogram's shape)."""
        adopted = [int(value) for value in buckets]
        if len(adopted) != len(self.buckets):
            raise ValueError(
                f"expected {len(self.buckets)} buckets, got {len(adopted)}"
            )
        for index, value in enumerate(adopted):
            self.buckets[index] += value
        self.total += total
        self.count += count


@dataclass
class _Family:
    """One metric name: its type, help text, and per-label-set children."""

    kind: str
    help: str
    children: "dict[tuple[tuple[str, str], ...], Any]" = field(default_factory=dict)


class MetricsRegistry:
    """Counters, gauges, and histograms under one exported namespace.

    ``counter``/``gauge``/``histogram`` return the instrument for a
    (name, labels) pair, creating it on first use — repeated calls with
    the same identity hand back the same instrument, so independent
    components can feed one series.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def __len__(self) -> int:
        return sum(len(family.children) for family in self._families.values())

    def _instrument(
        self, kind: str, name: str, help: str, labels: dict[str, str] | None,
        factory,
    ):
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family(kind=kind, help=help)
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"not {kind}"
            )
        key = tuple(sorted((labels or {}).items()))
        instrument = family.children.get(key)
        if instrument is None:
            instrument = family.children[key] = factory()
        return instrument

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        return self._instrument("counter", name, help, labels, Counter)

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        return self._instrument("gauge", name, help, labels, Gauge)

    def histogram(
        self,
        name: str,
        edges: Iterable[float],
        help: str = "",
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        return self._instrument(
            "histogram", name, help, labels, lambda: Histogram(edges)
        )

    # -- exporters ----------------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        """Nested JSON view: name -> {type, help, series: [{labels, ...}]}."""
        rendered: dict[str, Any] = {}
        for name, family in sorted(self._families.items()):
            series = []
            for key, instrument in sorted(family.children.items()):
                entry: dict[str, Any] = {"labels": dict(key)}
                if family.kind == "histogram":
                    entry["count"] = instrument.count
                    entry["sum"] = round(instrument.total, 6)
                    entry["buckets"] = list(instrument.buckets)
                    entry["edges"] = list(instrument.edges)
                else:
                    entry["value"] = instrument.value
                series.append(entry)
            rendered[name] = {
                "type": family.kind, "help": family.help, "series": series
            }
        return rendered

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (one textfile snapshot).

        Histograms render cumulatively with ``le`` labels plus ``_sum``
        and ``_count``, exactly as a scrape endpoint would expose them.
        """
        lines: list[str] = []
        for name, family in sorted(self._families.items()):
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key, instrument in sorted(family.children.items()):
                labels = dict(key)
                if family.kind == "histogram":
                    cumulative = 0
                    for edge, bucket in zip(
                        instrument.edges + (float("inf"),), instrument.buckets
                    ):
                        cumulative += bucket
                        lines.append(
                            f"{name}_bucket"
                            f"{_render_labels(labels, {'le': _format_value(edge)})}"
                            f" {cumulative}"
                        )
                    lines.append(
                        f"{name}_sum{_render_labels(labels)} "
                        f"{_format_value(instrument.total)}"
                    )
                    lines.append(
                        f"{name}_count{_render_labels(labels)} {instrument.count}"
                    )
                else:
                    lines.append(
                        f"{name}{_render_labels(labels)} "
                        f"{_format_value(instrument.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")
