"""Observability layer: span tracing, unified metrics, structured logs.

``repro.obs`` is deliberately a leaf package — it imports nothing from
:mod:`repro.engine` or :mod:`repro.sat`, so the engine can thread
tracers and metric registries through every layer without import
cycles.  See the README's "Observability" section for the trace
anatomy and exporter formats.
"""

from repro.obs.log import get_logger, setup_logging
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import (
    JobTrace,
    JsonlTraceSink,
    ListSink,
    Span,
    Tracer,
    attempt_spans,
    read_trace_file,
    render_trace_record,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JobTrace",
    "JsonlTraceSink",
    "ListSink",
    "MetricsRegistry",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "attempt_spans",
    "get_logger",
    "read_trace_file",
    "render_trace_record",
    "setup_logging",
]
