"""Execution layer: persistent worker runtimes behind one abstraction.

The plan-grouped scheduler (PR 4) made heavy jobs cheap *within* a chunk
— ``DeciderSpec.prepare`` contexts are shared by groupmates — but every
chunk still landed on a stateless ``ProcessPoolExecutor`` task, so the
Glushkov NFAs, termination fixpoints, and word tables of a schema were
rebuilt whenever its *next* chunk arrived.  Real DTD workloads
concentrate on a few recurring schemas (Ishihara et al., arXiv:1308.0769),
which makes the schema the natural long-lived unit of work.

This module replaces the ad-hoc ``executor.submit(...)`` calls in
:class:`~repro.engine.batch.BatchEngine` with one :class:`Executor`
abstraction and two implementations:

* :class:`InlineExecutor` — runs chunks in-process (``workers == 1``),
  holding one :class:`WorkerRuntime` for the engine's lifetime, so the
  second chunk of a schema reuses the first chunk's prepared contexts;
* :class:`PersistentPoolExecutor` — a pool of long-lived worker
  *lanes* (one process each), every lane owning a :class:`WorkerRuntime`
  that caches DTDs and prepared :class:`~repro.sat.planner.PlanContexts`
  keyed by schema fingerprint **across chunks** — and, because the pool
  itself is engine-lifetime, across
  :meth:`~repro.engine.batch.BatchEngine.run` calls.  The scheduler routes a
  chunk to a lane by schema-fingerprint affinity (a consistent hash,
  spilling to the least-loaded lane when the preferred lane's queue is
  deep), ships the DTD to a lane only on first touch instead of pickling
  it per chunk, and survives worker death by respawning the lane with a
  cold runtime and retrying its in-flight chunks once.

Affinity is a *scheduling* feature: with ``affinity=False`` the same
lanes run statelessly (least-loaded routing, a fresh context per chunk,
the DTD shipped every time) — the PR-4 behaviour, kept as the
benchmark baseline (``benchmarks/bench_worker_affinity.py``) and as an
escape hatch.  Either way verdicts, decision-cache contents, and
telemetry verdict mixes are bit-identical: runtimes cache *pure*
setup, never answers (``tests/test_metamorphic.py``).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import time
import zlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol, runtime_checkable

from repro.errors import EngineError
from repro.obs.log import get_logger
from repro.sat.planner import ExecutionTrace, Plan, PlanContexts, execute_plan

_LOG = get_logger("repro.engine.executors")

#: one outcome per question in a chunk: (satisfiable, method, reason,
#: error-or-None, trace attempts)
GroupOutcome = tuple[bool | None, str, str, str | None, list[tuple[str, float, str]]]

#: scheduler tunable defaults (see :class:`repro.engine.batch.BatchEngine`)
DEFAULT_LANE_QUEUE_DEPTH = 4


@dataclass(frozen=True)
class ChunkTask:
    """One unit of executor work: a chunk of pre-canonicalized questions
    sharing a plan and a schema.

    ``grouped=False`` marks an ungrouped single-question dispatch
    (``--no-group-by-plan``): it runs without shared contexts and without
    ticking group counters, exactly like a PR-4 per-job pool future.
    """

    task_id: int
    fingerprint: str | None
    canonicals: tuple
    plan: Plan
    bounds: Any = None
    grouped: bool = True


@dataclass
class ChunkOutcome:
    """What came back for one :class:`ChunkTask`.

    ``error`` is a whole-chunk failure (the lane died and its one retry
    died too); otherwise ``outcomes`` has one entry per question.
    ``runtime_hit`` means the lane served the chunk from an
    already-prepared runtime context (the cross-chunk cache paid off);
    the remaining flags record how the scheduler placed the chunk.
    """

    outcomes: list[GroupOutcome] = field(default_factory=list)
    shared_setup: bool = False
    prepare_error: str | None = None
    runtime_hit: bool = False
    lane: int = -1
    dtd_shipped: bool = False
    spilled: bool = False
    retried: bool = False
    error: str | None = None
    # lane-side observability, reassembled into parent-side spans and
    # lane-health gauges: wall time executing the chunk, wall time inside
    # prepare() hooks during this chunk, and the runtime's context-cache
    # occupancy / lifetime evictions after the chunk ran
    elapsed_ms: float = 0.0
    prepare_ms: float = 0.0
    runtime_contexts: int = 0
    runtime_evictions: int = 0


@dataclass
class ExecutorStats:
    """Lifetime counters of one executor (per-run deltas live on
    :class:`~repro.engine.batch.EngineStats`, fed from chunk outcomes)."""

    lanes: int = 0
    dispatched: int = 0
    dtd_ships: int = 0
    affinity_spills: int = 0
    runtime_context_hits: int = 0
    lane_respawns: int = 0
    chunk_retries: int = 0
    #: deepest in-flight queue each lane reached (lane-health gauge)
    lane_peak_depth: dict[int, int] = field(default_factory=dict)


@runtime_checkable
class Executor(Protocol):
    """The engine's execution contract: submit chunks, then drain.

    ``submit`` may be interleaved with work; ``drain`` yields every
    outstanding ``(task, outcome)`` pair (order unspecified) and returns
    once nothing is in flight.  ``close`` releases workers; a closed
    executor must not be reused.
    """

    def submit(self, task: ChunkTask, dtd) -> None: ...

    def drain(self) -> Iterator[tuple[ChunkTask, ChunkOutcome]]: ...

    def stats(self) -> ExecutorStats: ...

    def close(self) -> None: ...


class WorkerRuntime:
    """Per-worker state that outlives a single chunk.

    Caches the schemas a lane has been shipped (``fingerprint -> DTD``)
    and the prepared decider contexts per (fingerprint × plan telemetry
    key), so the N-th chunk of a schema skips ``prepare`` entirely.  The
    caches hold *pure* setup — Glushkov automata, termination fixpoints,
    word tables — never verdicts, so a warm runtime cannot change an
    answer (differential-checked).  With ``caching=False`` the runtime
    degrades to PR-4 behaviour: fresh contexts per chunk, nothing
    retained.

    The context cache (the heavy objects) is LRU-bounded at
    ``context_capacity`` (fingerprint × plan) entries, so a worker that
    sees an endless stream of distinct schemas cannot grow without
    limit; an evicted entry is simply rebuilt on its next chunk.  The
    DTD map is kept in full — the parent tracks which schemas it
    shipped to a lane and never re-ships, so evicting a DTD would turn
    its next chunk into an error (see the module ROADMAP note on a
    shared budget).
    """

    DEFAULT_CONTEXT_CAPACITY = 128

    def __init__(self, caching: bool = True, context_capacity: int | None = None):
        capacity = (
            context_capacity if context_capacity is not None
            else self.DEFAULT_CONTEXT_CAPACITY
        )
        if capacity < 1:
            raise EngineError(
                f"context_capacity must be positive, got {capacity}"
            )
        self.caching = caching
        self.context_capacity = capacity
        self._dtds: dict[str, Any] = {}
        self._contexts: "OrderedDict[tuple[str, str], PlanContexts]" = (
            OrderedDict()
        )
        self.context_hits = 0
        self.context_misses = 0
        self.context_evictions = 0

    @property
    def schemas(self) -> int:
        return len(self._dtds)

    def adopt_schema(self, fingerprint: str, dtd) -> None:
        if self.caching and fingerprint is not None and dtd is not None:
            self._dtds[fingerprint] = dtd

    def resolve_dtd(self, fingerprint: str | None, dtd):
        if dtd is not None:
            self.adopt_schema(fingerprint, dtd)
            return dtd
        if fingerprint is not None:
            return self._dtds.get(fingerprint)
        return None

    def _contexts_for(self, task: ChunkTask, dtd) -> tuple[PlanContexts, bool]:
        """The chunk's shared contexts and whether they were already warm
        (a runtime hit).  Only grouped chunks against a fingerprinted
        schema are worth caching across chunks — a no-DTD plan has no
        ``prepare`` work to share."""
        key = (task.fingerprint, task.plan.telemetry_key)
        if self.caching and task.fingerprint is not None:
            contexts = self._contexts.get(key)
            if contexts is not None:
                self.context_hits += 1
                self._contexts.move_to_end(key)
                return contexts, contexts.built > 0
            contexts = PlanContexts(task.plan, dtd)
            self._contexts[key] = contexts
            self.context_misses += 1
            while len(self._contexts) > self.context_capacity:
                self._contexts.popitem(last=False)
                self.context_evictions += 1
            return contexts, False
        return PlanContexts(task.plan, dtd), False

    def run_chunk(self, task: ChunkTask, dtd=None) -> ChunkOutcome:
        """Decide every question in ``task`` (the chunk semantics of the
        plan-grouped scheduler: shared lazy contexts, one question's
        failure never poisons its groupmates).  Every outcome carries
        the lane-side observability fields — chunk wall time, prepare
        time, and the runtime's context-cache health — so the parent can
        reassemble spans and lane gauges without extra IPC."""
        start = time.perf_counter()
        outcome = self._run_chunk_inner(task, dtd)
        outcome.elapsed_ms = (time.perf_counter() - start) * 1e3
        outcome.runtime_contexts = len(self._contexts)
        outcome.runtime_evictions = self.context_evictions
        return outcome

    def _run_chunk_inner(self, task: ChunkTask, dtd) -> ChunkOutcome:
        dtd = self.resolve_dtd(task.fingerprint, dtd)
        if task.fingerprint is not None and dtd is None:
            # the parent thought this lane had the schema but the runtime
            # is cold (e.g. a respawned lane handed a ship-less retry);
            # surfacing a chunk error lets the engine fail it cleanly
            return ChunkOutcome(
                error=f"lane runtime has no schema {task.fingerprint[:12]}"
            )
        if not task.grouped:
            return ChunkOutcome(outcomes=[
                self._run_question(task, canonical, dtd, contexts=None)
                for canonical in task.canonicals
            ])
        contexts, runtime_hit = self._contexts_for(task, dtd)
        prepare_ms_before = contexts.prepare_ms
        # build the primary's context eagerly: every question runs it, and
        # a failing prepare should be visible even if the first question
        # errors.  shared_setup is pinned here — a fallback context built
        # mid-chunk must not retroactively count earlier questions as
        # setup reuses
        contexts.get(task.plan.decider)
        shared_setup = contexts.built > 0
        outcomes = [
            self._run_question(task, canonical, dtd, contexts=contexts)
            for canonical in task.canonicals
        ]
        if contexts.prepare_error is not None:
            # a failed prepare is memoized only within the chunk (never
            # re-run per question); evict the cached entry so the next
            # chunk retries instead of degrading this schema × plan to
            # per-job setup for the runtime's whole lifetime
            self._contexts.pop(
                (task.fingerprint, task.plan.telemetry_key), None
            )
        return ChunkOutcome(
            outcomes=outcomes,
            shared_setup=shared_setup,
            prepare_error=contexts.prepare_error,
            runtime_hit=runtime_hit and shared_setup,
            prepare_ms=contexts.prepare_ms - prepare_ms_before,
        )

    def _run_question(self, task: ChunkTask, canonical, dtd, contexts) -> GroupOutcome:
        trace = ExecutionTrace()
        try:
            result = execute_plan(
                task.plan, canonical, dtd, task.bounds,
                pre_canonicalized=True, trace=trace, contexts=contexts,
            )
        except Exception as error:
            # any exception — decline with no fallback, or a latent
            # decider bug — fails only this question
            return (None, "error", "", str(error), trace.attempts)
        return (
            result.satisfiable, result.method, result.reason, None,
            trace.attempts,
        )


class InlineExecutor:
    """In-process :class:`Executor` for single-worker engines.

    Chunks queue on ``submit`` and execute lazily during ``drain`` (the
    single-worker engine has nothing to overlap them with).  The runtime
    lives as long as the executor — which the engine keeps for its own
    lifetime — so chunk N of a schema reuses chunk 1's contexts even
    across separate :meth:`~repro.engine.batch.BatchEngine.run` calls.
    """

    def __init__(self, affinity: bool = True):
        self.affinity = affinity
        self.runtime = WorkerRuntime(caching=affinity)
        self._queue: list[tuple[ChunkTask, Any]] = []
        self._stats = ExecutorStats(lanes=0)
        self._closed = False

    def submit(self, task: ChunkTask, dtd) -> None:
        if self._closed:
            raise EngineError("inline executor already closed")
        self._queue.append((task, dtd))
        self._stats.dispatched += 1

    def drain(self) -> Iterator[tuple[ChunkTask, ChunkOutcome]]:
        if self._closed:
            raise EngineError("inline executor already closed")
        while self._queue:
            task, dtd = self._queue.pop(0)
            outcome = self.runtime.run_chunk(task, dtd)
            outcome.lane = 0
            if outcome.runtime_hit:
                self._stats.runtime_context_hits += 1
            yield task, outcome

    def cancel_pending(self) -> int:
        """Drop queued-but-unexecuted chunks (exception recovery: a chunk
        submitted for a run that aborted must not leak into the next)."""
        dropped = len(self._queue)
        self._queue.clear()
        return dropped

    def stats(self) -> ExecutorStats:
        return self._stats

    def close(self) -> None:
        self._queue.clear()
        self._closed = True


def _worker_main(lane_id: int, caching: bool, requests, results) -> None:
    """Lane entry point: loop over chunk requests until the ``None``
    sentinel, keeping one :class:`WorkerRuntime` alive across chunks."""
    runtime = WorkerRuntime(caching=caching)
    while True:
        message = requests.get()
        if message is None:
            break
        task, dtd = message
        try:
            outcome = runtime.run_chunk(task, dtd)
        except BaseException as error:  # never let a lane die silently
            outcome = ChunkOutcome(error=f"{type(error).__name__}: {error}")
        try:
            results.put((lane_id, task.task_id, outcome))
        except Exception:
            break  # parent gone; nothing sensible left to do


@dataclass
class _InFlight:
    task: ChunkTask
    dtd: Any            # kept parent-side so a retry can re-ship it
    attempts: int = 1
    dtd_shipped: bool = False
    spilled: bool = False


class _Lane:
    """One persistent worker process plus its parent-side bookkeeping.

    The process forks lazily on the lane's first ``send`` — routing is
    over lane *slots* (so the consistent hash is stable regardless of
    which lanes are live), but a light run that only ever touches one
    lane pays for one fork, not ``workers``.
    """

    def __init__(self, lane_id: int, ctx, caching: bool, results) -> None:
        self.lane_id = lane_id
        self._ctx = ctx
        self._caching = caching
        self._results = results
        self.requests = None
        self.process = None
        self.shipped: set[str] = set()
        self.in_flight: dict[int, _InFlight] = {}

    @property
    def depth(self) -> int:
        return len(self.in_flight)

    @property
    def started(self) -> bool:
        return self.process is not None

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def ensure_started(self) -> None:
        if self.process is None:
            self.requests = self._ctx.Queue()
            self.process = self._ctx.Process(
                target=_worker_main,
                args=(self.lane_id, self._caching, self.requests,
                      self._results),
                daemon=True,
            )
            self.process.start()
            _LOG.debug("lane %d forked (pid %s)", self.lane_id, self.process.pid)

    def send(self, entry: _InFlight, ship_always: bool) -> None:
        self.ensure_started()
        task = entry.task
        dtd = None
        if entry.dtd is not None:
            if task.fingerprint is None:
                dtd = entry.dtd
            elif ship_always or task.fingerprint not in self.shipped:
                # record the ship either way: after a recovery retry
                # force-ships a schema, the lane's runtime holds it, so
                # later affinity-routed chunks must not re-pickle it
                dtd = entry.dtd
                self.shipped.add(task.fingerprint)
        entry.dtd_shipped = dtd is not None
        self.in_flight[task.task_id] = entry
        self.requests.put((task, dtd))

    def stop(self) -> None:
        if self.process is None:
            return
        try:
            self.requests.put(None)
        except Exception:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=2.0)
        self.requests.close()
        self.requests.cancel_join_thread()


class PersistentPoolExecutor:
    """Process-pool :class:`Executor` with schema-affinity lanes.

    Routing: a chunk's affinity key (schema fingerprint, or the plan's
    telemetry key for no-DTD chunks) hashes to a *preferred* lane, so
    every chunk of one schema keeps landing on the same worker and finds
    its runtime caches warm.  When the preferred lane's queue is already
    ``lane_queue_depth`` deep and another lane is strictly shallower,
    the chunk spills to the least-loaded lane — affinity is a
    preference, not a straitjacket (a skewed workload must not serialize
    behind one hot lane).

    Fault tolerance: a lane that dies (killed worker, hard crash in C
    code) is respawned with a cold runtime and each of its in-flight
    chunks is retried **once**; a chunk whose retry also dies comes back
    as a whole-chunk error, which the engine turns into per-job errors.
    """

    def __init__(
        self,
        workers: int,
        *,
        affinity: bool = True,
        lane_queue_depth: int = DEFAULT_LANE_QUEUE_DEPTH,
        mp_context=None,
    ) -> None:
        if workers < 1:
            raise EngineError(f"workers must be positive, got {workers}")
        if lane_queue_depth < 1:
            raise EngineError(
                f"lane_queue_depth must be positive, got {lane_queue_depth}"
            )
        self.affinity = affinity
        self.lane_queue_depth = lane_queue_depth
        if mp_context is None:
            try:
                mp_context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                mp_context = multiprocessing.get_context()
        self._ctx = mp_context
        self._results = mp_context.Queue()
        self._lanes = [
            _Lane(lane_id, mp_context, affinity, self._results)
            for lane_id in range(workers)
        ]
        self._stats = ExecutorStats(lanes=workers)
        #: chunks whose retry also died, finished parent-side and waiting
        #: for drain to hand them back
        self._failed: list[tuple[ChunkTask, ChunkOutcome]] = []
        self._closed = False

    # -- routing ------------------------------------------------------------
    def _affinity_key(self, task: ChunkTask) -> str:
        return task.fingerprint or task.plan.telemetry_key

    def _route(self, task: ChunkTask) -> tuple[_Lane, bool]:
        """Pick the lane for ``task``; returns ``(lane, spilled)``."""
        least = min(self._lanes, key=lambda lane: (lane.depth, lane.lane_id))
        if not self.affinity:
            return least, False
        key = self._affinity_key(task)
        preferred = self._lanes[
            zlib.crc32(key.encode("utf-8")) % len(self._lanes)
        ]
        if (
            preferred.depth >= self.lane_queue_depth
            and least.depth < preferred.depth
        ):
            return least, True
        return preferred, False

    # -- the Executor contract ----------------------------------------------
    def submit(self, task: ChunkTask, dtd) -> None:
        if self._closed:
            raise EngineError("executor already closed")
        lane, spilled = self._route(task)
        if lane.started and not lane.alive():
            lane = self._recover(lane)
        entry = _InFlight(task=task, dtd=dtd, spilled=spilled)
        lane.send(entry, ship_always=not self.affinity)
        self._stats.dispatched += 1
        if lane.depth > self._stats.lane_peak_depth.get(lane.lane_id, 0):
            self._stats.lane_peak_depth[lane.lane_id] = lane.depth
        if spilled:
            self._stats.affinity_spills += 1
        if entry.dtd_shipped:
            self._stats.dtd_ships += 1

    def drain(self) -> Iterator[tuple[ChunkTask, ChunkOutcome]]:
        if self._closed:
            # without this guard a drain on a closed pool would spin on
            # the torn-down result queue forever
            raise EngineError("executor already closed")
        while True:
            while self._failed:
                yield self._failed.pop(0)
            if not any(lane.in_flight for lane in self._lanes):
                return
            try:
                lane_id, task_id, outcome = self._results.get(timeout=0.05)
            except queue_module.Empty:
                for lane in list(self._lanes):
                    if not lane.alive() and lane.in_flight:
                        self._recover(lane)
                continue
            entry = self._pop_in_flight(task_id)
            if entry is None:
                continue  # a retry already resolved this task
            yield self._finish(entry, lane_id, outcome)

    def _pop_in_flight(self, task_id: int) -> _InFlight | None:
        for lane in self._lanes:
            entry = lane.in_flight.pop(task_id, None)
            if entry is not None:
                return entry
        return None

    def _finish(
        self, entry: _InFlight, lane_id: int, outcome: ChunkOutcome
    ) -> tuple[ChunkTask, ChunkOutcome]:
        outcome.lane = lane_id
        outcome.dtd_shipped = entry.dtd_shipped
        outcome.spilled = entry.spilled
        outcome.retried = entry.attempts > 1
        if outcome.runtime_hit:
            self._stats.runtime_context_hits += 1
        return entry.task, outcome

    def _recover(self, lane: _Lane) -> _Lane:
        """Replace a dead lane with a cold one (same lane id, so affinity
        routing is undisturbed); retry each of its in-flight chunks once
        and finish chunks whose retry already died.

        Retries round-robin over the fresh lane and the other live lanes
        (always re-shipping the schema — the target runtime may be cold):
        a poison chunk that kills whatever lane runs it then takes down
        only itself on its second death, not the innocent chunks that
        happened to be queued behind it."""
        index = self._lanes.index(lane)
        orphans = list(lane.in_flight.values())
        _LOG.warning(
            "worker lane %d died with %d chunk(s) in flight; respawning",
            lane.lane_id, len(orphans),
        )
        lane.in_flight.clear()
        try:
            if lane.requests is not None:
                lane.requests.close()
                lane.requests.cancel_join_thread()
        except Exception:
            pass
        fresh = _Lane(lane.lane_id, self._ctx, self.affinity, self._results)
        self._lanes[index] = fresh
        self._stats.lane_respawns += 1
        targets = [fresh] + [
            other for other in self._lanes
            if other is not fresh and (other.alive() or not other.started)
        ]
        position = 0
        for entry in orphans:
            if entry.attempts >= 2:
                _LOG.error(
                    "chunk %d survived no lane (retried once, lane died "
                    "again); failing its jobs", entry.task.task_id,
                )
                self._failed.append((entry.task, ChunkOutcome(
                    lane=index, retried=True, spilled=entry.spilled,
                    error="worker lane died twice (chunk retried once)",
                )))
                continue
            entry.attempts += 1
            self._stats.chunk_retries += 1
            targets[position % len(targets)].send(entry, ship_always=True)
            position += 1
            if entry.dtd_shipped:
                self._stats.dtd_ships += 1
        return fresh

    def stats(self) -> ExecutorStats:
        return self._stats

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for lane in self._lanes:
            lane.stop()
        self._results.close()
        self._results.cancel_join_thread()

    def __del__(self) -> None:
        # the pool is engine-lifetime: an engine dropped without close()
        # must still reap its forked lanes (daemon processes would die
        # with the interpreter, but not with the engine)
        try:
            self.close()
        except Exception:  # pragma: no cover - interpreter teardown
            pass
