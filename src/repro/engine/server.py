"""Satisfiability-as-a-service: the batch engine behind a socket.

``python -m repro serve --socket PATH`` (or ``--port N``) starts an
asyncio daemon that multiplexes any number of concurrent client
connections onto **one** long-lived
:class:`~repro.engine.batch.BatchEngine`.  The engine's decision cache,
plan caches, cost model, and persistent worker lanes amortize across
every request the process ever serves — the step from "CLI that
amortizes within a run" to "service that amortizes across millions of
requests".

Protocol — the batch engine's existing JSONL job format, framed over
the socket:

* client → server: one job object per line (``{"query": ..., "schema":
  ..., "id": ...}``; ``schema``/``id`` optional, blank lines and ``#``
  comments ignored) — byte-compatible with ``repro batch`` input files;
* server → client: one JSON object per line, streamed **as each job's
  verdict lands** (order across a batch is not input order — match by
  ``id``).  Three shapes:

  - a normal result record (:meth:`~repro.engine.batch.JobResult.to_record`);
  - ``{"id": ..., "status": "retry", "error": ...}`` — admission
    control shed the job (too many in flight); resubmit later;
  - ``{"status": "error", "error": ...}`` — the line was not a valid
    job record (never executed, nothing in flight).

Scheduling: jobs arriving on a connection while the engine is busy
accumulate and dispatch as one engine batch (up to ``max_batch``), so a
client that floods N lines pays per-batch amortization, not N
single-job runs.  Batches from different connections serialize on the
shared engine; results stream back per job via the engine's
``on_result`` callback, so a big batch does not block its own output.

Backpressure: when admitted-but-unanswered jobs reach ``max_inflight``
(default ``workers × lane_queue_depth × group_chunk_size``, the lane
queues' worth of work), new jobs get a ``retry`` response instead of
unbounded buffering — the same shed-don't-queue stance the lanes take
at ``lane_queue_depth``.

Lifecycle: SIGTERM/SIGINT stop intake, drain every admitted job, stream
the remaining results, snapshot ``save_state()`` (when the engine has a
state dir or shared state tier), close the engine, and exit cleanly;
``--snapshot-interval``
additionally snapshots periodically while serving, so a crash loses at
most one interval of telemetry.  Server health (connection and inflight
gauges, ``repro_server_*`` counters, per-batch latency histogram) rides
the unified metrics registry into the state dir's ``metrics.prom``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal as signal_module
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.batch import BatchEngine, Job
from repro.engine.jobs import parse_job_line
from repro.errors import EngineError, ReproError
from repro.obs.log import get_logger
from repro.obs.trace import FAILED, OK
from repro.sat.telemetry import LATENCY_BUCKETS_MS

_LOG = get_logger("repro.engine.server")

#: largest number of pending jobs one engine batch will take
DEFAULT_MAX_BATCH = 256
#: seconds between periodic save_state() snapshots while serving
DEFAULT_SNAPSHOT_INTERVAL = 300.0


@dataclass
class ServerStats:
    """Serving-layer counters and gauges, registered into the engine's
    unified metrics registry (so ``save_state`` snapshots them into
    ``metrics.prom`` alongside the engine's own counters)."""

    connections_total: int = 0
    connections_active: int = 0
    jobs_admitted: int = 0
    results_streamed: int = 0
    retries_shed: int = 0
    invalid_lines: int = 0
    batches: int = 0
    inflight_jobs: int = 0
    snapshots: int = 0
    batch_ms: list[float] = field(default_factory=list)

    def register_metrics(self, registry) -> None:
        for name, attr, help_text in (
            ("connections", "connections_total",
             "client connections accepted"),
            ("jobs", "jobs_admitted", "job lines admitted for execution"),
            ("results", "results_streamed",
             "result lines streamed back to clients"),
            ("retries", "retries_shed",
             "jobs shed with a retry response (backpressure)"),
            ("invalid_lines", "invalid_lines",
             "request lines that were not valid job records"),
            ("batches", "batches", "engine batches dispatched by the server"),
            ("snapshots", "snapshots", "state snapshots written while serving"),
        ):
            registry.counter(f"repro_server_{name}_total", help_text).inc(
                getattr(self, attr)
            )
        registry.gauge(
            "repro_server_active_connections", "currently connected clients"
        ).set(self.connections_active)
        registry.gauge(
            "repro_server_inflight_jobs",
            "jobs admitted but not yet answered",
        ).set(self.inflight_jobs)
        histogram = registry.histogram(
            "repro_server_batch_ms", LATENCY_BUCKETS_MS,
            "wall time of one server-dispatched engine batch (ms)",
        )
        for elapsed_ms in self.batch_ms:
            histogram.observe(elapsed_ms)


class _Connection:
    """Per-client state: jobs waiting for the next batch, the outbound
    line queue, and the wakeup the batch loop parks on."""

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.pending: list[Job] = []
        self.out_queue: asyncio.Queue = asyncio.Queue()
        self.wakeup = asyncio.Event()
        self.eof = False
        self.jobs = 0
        self.batches = 0

    def kick(self) -> None:
        self.wakeup.set()


class EngineServer:
    """The asyncio daemon behind ``repro serve``.

    One engine, many connections: each connection runs a read loop
    (ingest + admission control), a batch loop (dispatch pending jobs to
    the shared engine), and a writer loop (stream result lines).  The
    engine itself runs on a single dedicated thread — `BatchEngine` is
    not thread-safe, and one thread keeps the event loop free to accept,
    ingest, and stream while a batch decides.

    ``on_ready`` (optional) is called with the server once the socket is
    bound and listening — the CLI uses it to print the endpoint.
    """

    def __init__(
        self,
        engine: BatchEngine,
        *,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        max_inflight: int | None = None,
        snapshot_interval: float | None = None,
        on_ready: Callable[["EngineServer"], None] | None = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise EngineError(
                "serve needs exactly one endpoint: --socket PATH or --port N"
            )
        if max_batch < 1:
            raise EngineError(f"max_batch must be positive, got {max_batch}")
        if max_inflight is not None and max_inflight < 1:
            raise EngineError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if snapshot_interval is not None and snapshot_interval <= 0:
            raise EngineError(
                f"snapshot_interval must be positive, got {snapshot_interval}"
            )
        self.engine = engine
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.max_batch = max_batch
        # default backpressure bar: the pooled lanes' queueing capacity —
        # admitting more than the lanes can hold only grows server-side
        # buffers without making anything finish sooner
        self.max_inflight = (
            max_inflight if max_inflight is not None
            else max(
                1,
                engine.workers * engine.lane_queue_depth
                * engine.group_chunk_size,
            )
        )
        self.snapshot_interval = snapshot_interval
        self.on_ready = on_ready
        self.stats = ServerStats()
        engine.metrics_sources.append(self.stats)
        self.endpoint: str | None = None
        self._shutdown: asyncio.Event | None = None
        self._engine_lock: asyncio.Lock | None = None
        self._engine_thread: ThreadPoolExecutor | None = None
        self._client_tasks: set = set()
        self._next_conn_id = 0

    # -- entry points -------------------------------------------------------
    def run(self) -> int:
        """Blocking entry point (the CLI): serve until SIGTERM/SIGINT,
        then drain and exit 0."""
        asyncio.run(self.serve_forever())
        return 0

    def request_shutdown(self, reason: str = "request") -> None:
        """Begin a graceful drain (idempotent; also the signal handler)."""
        if self._shutdown is not None and not self._shutdown.is_set():
            _LOG.warning("received %s: draining and shutting down", reason)
            self._shutdown.set()

    async def serve_forever(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._engine_lock = asyncio.Lock()
        self._engine_thread = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-engine"
        )
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_shutdown,
                    signal_module.Signals(signum).name,
                )
            except (NotImplementedError, RuntimeError):
                # non-main thread or platform without signal support
                # (e.g. an embedded test loop): shutdown comes from
                # request_shutdown() instead
                pass
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                # a stale socket from a crashed predecessor would fail
                # the bind; a *live* predecessor loses the path — same
                # rule every unix-socket daemon applies
                _LOG.warning("removing stale socket %s", self.socket_path)
                os.unlink(self.socket_path)
            server = await asyncio.start_unix_server(
                self._client, path=self.socket_path
            )
            self.endpoint = f"unix:{self.socket_path}"
        else:
            server = await asyncio.start_server(
                self._client, host=self.host, port=self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self.endpoint = f"{self.host}:{self.port}"
        snapshot_task = None
        if self.snapshot_interval is not None and self.engine.has_state:
            snapshot_task = asyncio.create_task(self._snapshot_loop())
        _LOG.info(
            "serving on %s (max_batch=%d, max_inflight=%d, workers=%d)",
            self.endpoint, self.max_batch, self.max_inflight,
            self.engine.workers,
        )
        if self.on_ready is not None:
            self.on_ready(self)
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            # graceful drain: every connection handler finishes its
            # admitted jobs and streams their results before we snapshot
            if self._client_tasks:
                await asyncio.gather(
                    *list(self._client_tasks), return_exceptions=True
                )
            if snapshot_task is not None:
                snapshot_task.cancel()
                try:
                    await snapshot_task
                except asyncio.CancelledError:
                    pass
            if self.engine.has_state:
                await self._snapshot()
            self._engine_thread.shutdown(wait=True)
            if not self.engine.closed:
                self.engine.close()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            _LOG.info(
                "drained and closed (%d jobs over %d connections)",
                self.stats.jobs_admitted, self.stats.connections_total,
            )

    # -- per-connection machinery -------------------------------------------
    async def _client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        self._next_conn_id += 1
        conn = _Connection(self._next_conn_id)
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        tracer = self.engine.tracer
        trace = None
        if tracer is not None:
            trace = tracer.begin(
                job_id=f"conn-{conn.conn_id}", query="<connection>"
            )
        writer_task = asyncio.create_task(self._writer_loop(conn, writer))
        batch_task = asyncio.create_task(self._batch_loop(conn, trace))
        try:
            await self._read_loop(conn, reader)
        finally:
            conn.eof = True
            conn.kick()
            try:
                await batch_task
            finally:
                await conn.out_queue.put(None)
                try:
                    await writer_task
                finally:
                    if tracer is not None and trace is not None:
                        tracer.finish(
                            trace,
                            verdict=f"{conn.jobs} jobs/{conn.batches} batches",
                            route="serve",
                        )
                    self.stats.connections_active -= 1
                    self._client_tasks.discard(task)
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass

    async def _read_loop(self, conn: _Connection, reader) -> None:
        """Ingest lines until client EOF or shutdown (on shutdown the
        connection stops *reading* but its admitted jobs still drain)."""
        shutdown_wait = asyncio.ensure_future(self._shutdown.wait())
        try:
            while True:
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, shutdown_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read not in done:
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, ConnectionError, OSError):
                        pass
                    return
                try:
                    line = read.result()
                except (ConnectionError, OSError):
                    return
                if not line:
                    return
                self._ingest(conn, line)
        finally:
            shutdown_wait.cancel()
            try:
                await shutdown_wait
            except asyncio.CancelledError:
                pass

    def _ingest(self, conn: _Connection, line: bytes) -> None:
        text = line.decode("utf-8", "replace").strip()
        if not text or text.startswith("#"):
            return
        try:
            job = parse_job_line(text)
        except EngineError as error:
            self.stats.invalid_lines += 1
            conn.out_queue.put_nowait({"status": "error", "error": str(error)})
            return
        if self.stats.inflight_jobs >= self.max_inflight:
            self.stats.retries_shed += 1
            conn.out_queue.put_nowait({
                "id": job.id if job.id is not None else job.query_text,
                "status": "retry",
                "error": (
                    f"backpressure: {self.stats.inflight_jobs} jobs in "
                    f"flight (max {self.max_inflight}); retry later"
                ),
            })
            return
        self.stats.jobs_admitted += 1
        self.stats.inflight_jobs += 1
        conn.jobs += 1
        conn.pending.append(job)
        conn.kick()

    async def _batch_loop(self, conn: _Connection, trace) -> None:
        while True:
            if not conn.pending:
                if conn.eof:
                    return
                conn.wakeup.clear()
                # single-threaded loop: nothing can append between the
                # clear and this check without an await in between
                if not conn.pending and not conn.eof:
                    await conn.wakeup.wait()
                continue
            batch = conn.pending[: self.max_batch]
            del conn.pending[: len(batch)]
            conn.batches += 1
            await self._run_batch(conn, batch, trace)

    async def _run_batch(self, conn: _Connection, batch: list[Job], trace) -> None:
        loop = asyncio.get_running_loop()
        emitted = [0]

        def stream(result) -> None:
            # called on the engine thread; call_soon_threadsafe keeps
            # FIFO order, so every result is enqueued on the loop before
            # the run_in_executor await below resumes
            loop.call_soon_threadsafe(self._emit, conn, result, emitted)

        start = time.perf_counter()
        error: str | None = None
        async with self._engine_lock:
            try:
                await loop.run_in_executor(
                    self._engine_thread, self.engine.run, batch, stream
                )
            except ReproError as exc:
                error = str(exc)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        self.stats.batches += 1
        self.stats.batch_ms.append(elapsed_ms)
        if trace is not None:
            attrs: dict[str, Any] = {
                "jobs": len(batch), "connection": conn.conn_id,
            }
            if error is not None:
                attrs["error"] = error
            trace.span(
                "serve.batch", ms=elapsed_ms,
                status=FAILED if error is not None else OK, attrs=attrs,
            )
        missing = len(batch) - emitted[0]
        if missing > 0:
            # a batch-level failure (e.g. the engine raised): every
            # admitted job still gets exactly one response line
            message = (
                error if error is not None
                else "engine returned no result for this job"
            )
            _LOG.error(
                "batch of %d jobs ended after %d results: %s",
                len(batch), emitted[0], message,
            )
            self.stats.inflight_jobs -= missing
            if emitted[0] == 0:
                for job in batch:
                    conn.out_queue.put_nowait({
                        "id": job.id if job.id is not None else job.query_text,
                        "status": "error",
                        "error": message,
                    })
            else:
                for _ in range(missing):
                    conn.out_queue.put_nowait(
                        {"status": "error", "error": message}
                    )

    def _emit(self, conn: _Connection, result, emitted: list[int]) -> None:
        emitted[0] += 1
        self.stats.inflight_jobs -= 1
        self.stats.results_streamed += 1
        conn.out_queue.put_nowait(result.to_record())

    async def _writer_loop(self, conn: _Connection, writer) -> None:
        while True:
            record = await conn.out_queue.get()
            if record is None:
                return
            try:
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
            except (ConnectionError, OSError):
                # client went away mid-stream; keep consuming so the
                # batch loop's puts drain into the void until the
                # sentinel arrives (its verdicts are already cached)
                continue

    # -- snapshots ----------------------------------------------------------
    async def _snapshot_loop(self) -> None:
        while not self._shutdown.is_set():
            try:
                await asyncio.wait_for(
                    self._shutdown.wait(), timeout=self.snapshot_interval
                )
            except asyncio.TimeoutError:
                await self._snapshot()
            else:
                return

    async def _snapshot(self) -> None:
        loop = asyncio.get_running_loop()
        async with self._engine_lock:
            try:
                await loop.run_in_executor(
                    self._engine_thread, self.engine.save_state
                )
            except (ReproError, OSError) as error:
                _LOG.error("state snapshot failed: %s", error)
                return
        self.stats.snapshots += 1
        _LOG.info("state snapshot saved to %s", self.engine.state_target)
