"""Engine state persistence: warm starts across processes.

A long-lived checker accumulates three kinds of routing knowledge that
died with the process before this module existed:

* **per-schema plan caches** — the planner's routing decisions, keyed by
  feature signature on each :class:`~repro.engine.registry.SchemaArtifacts`;
* **per-plan telemetry** — the latency/verdict/fallback table
  (:class:`~repro.sat.telemetry.PlanTelemetry`);
* **the cost model** — measured per-(signature × size-bucket) decider
  latency (:class:`~repro.sat.costmodel.CostModel`);
* **the decision cache** — verdicts keyed on canonical form × schema
  fingerprint (bounded; only current entries are persisted);
* **scheduler tunables** — the plan-grouped scheduler's settings
  (``group_by_plan``, ``group_chunk_size``), the executor layer's
  (``affinity``, ``lane_queue_depth``) plus the hygiene knobs, so a
  tuned deployment keeps its configuration across processes.

``save_state``/``load_state`` serialize them into a ``--state-dir``
alongside batch results, so a cold process that has seen the workload
before builds **zero** plans and re-decides nothing the cache still
covers.  Loading is forgiving: a missing directory is empty state, and a
corrupt file is skipped with a warning rather than failing the run —
state is an optimization, never a correctness requirement.

**Hygiene.**  Without bounds the files grow with the workload: every
distinct question ever decided stays in ``decisions.json`` and every
plan ever executed keeps a telemetry row.  ``save_state`` therefore caps
persisted decisions **per schema** (newest entries win) and ages out
telemetry rows whose newest observation is older than
``telemetry_max_age_days`` — both tunable, both purely size/freshness
trims that can cost warm-start coverage but never correctness.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any

from repro.obs.log import get_logger
from repro.sat.costmodel import CostModel
from repro.sat.planner import Plan
from repro.sat.telemetry import PlanTelemetry

_LOG = get_logger("repro.engine.state")

#: bump when the on-disk layout changes; mismatched files are skipped
STATE_VERSION = 1

PLANS_FILE = "plans.json"
TELEMETRY_FILE = "telemetry.json"
COST_MODEL_FILE = "cost_model.json"
DECISIONS_FILE = "decisions.json"
SCHEDULER_FILE = "scheduler.json"
#: snapshot of the last run's EngineStats (machine consumers:
#: ``repro stats --json --plans``)
ENGINE_STATS_FILE = "engine_stats.json"
#: Prometheus text-format snapshot of the unified metrics registry
#: (not JSON and not version-wrapped: a textfile collector reads it raw)
METRICS_FILE = "metrics.prom"


def _atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically: dump into a sibling tmp
    file, flush + fsync it, then ``os.replace`` over the target.  A crash
    at any point leaves either the complete old file or the complete new
    one — never a torn or empty target (the fsync closes the window where
    the rename lands before the data does).  A failed write cleans up its
    tmp file and re-raises."""
    tmp_path = path + ".tmp"
    try:
        with open(tmp_path, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.remove(tmp_path)
        except OSError:
            pass
        raise


def _atomic_write_json(path: str, payload: dict[str, Any]) -> None:
    """Serialize ``payload`` and :func:`_atomic_write_text` it — the one
    write path every state file goes through."""
    _atomic_write_text(
        path, json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )


def _warn(warnings: list[str], message: str) -> None:
    """Record a degrade message both ways: the ``warnings`` list keeps
    the API contract (callers can inspect what was skipped), and the
    structured log makes it visible in a deployment's log stream."""
    warnings.append(message)
    _LOG.warning(message)


#: scheduler tunables accepted from a persisted ``scheduler.json``:
#: name -> validator returning the coerced value or raising
_SCHEDULER_TUNABLES = {
    "group_by_plan": lambda value: _strict_bool(value),
    "group_chunk_size": lambda value: _positive_int(value),
    "decision_cap_per_schema": lambda value: _positive_int(value),
    "telemetry_max_age_days": lambda value: _positive_float(value),
    "affinity": lambda value: _strict_bool(value),
    "lane_queue_depth": lambda value: _positive_int(value),
}


def _strict_bool(value) -> bool:
    # no coercion: "false" (a string) silently becoming True would flip
    # the scheduler behind the operator's back
    if not isinstance(value, bool):
        raise ValueError(f"must be true or false, got {value!r}")
    return value


def _positive_int(value) -> int:
    if isinstance(value, bool):  # bool is an int: true would become 1
        raise ValueError(f"must be a number, got {value!r}")
    coerced = int(value)
    if coerced < 1:
        raise ValueError(f"must be positive, got {value!r}")
    return coerced


def _positive_float(value) -> float:
    if isinstance(value, bool):
        raise ValueError(f"must be a number, got {value!r}")
    coerced = float(value)
    if coerced <= 0:
        raise ValueError(f"must be positive, got {value!r}")
    return coerced


@dataclass
class PersistedState:
    """Everything ``load_state`` recovered from a state directory."""

    plans: dict[str, dict[str, Plan]] = field(default_factory=dict)  # fingerprint -> sig -> Plan
    plan_names: dict[str, str] = field(default_factory=dict)         # fingerprint -> schema name
    telemetry: PlanTelemetry | None = None
    cost_model: CostModel | None = None
    decisions: list[tuple[tuple[str, str, str], dict[str, Any]]] = field(default_factory=list)
    scheduler: dict[str, Any] = field(default_factory=dict)
    #: the last persisted EngineStats.as_dict() snapshot, if any
    engine_stats: dict[str, Any] | None = None
    warnings: list[str] = field(default_factory=list)

    @property
    def plan_count(self) -> int:
        return sum(len(per_schema) for per_schema in self.plans.values())


def _read_json(path: str, warnings: list[str]) -> dict[str, Any] | None:
    if not os.path.exists(path):
        return None
    try:
        with open(path) as handle:
            record = json.load(handle)
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as error:
        _warn(warnings, f"{os.path.basename(path)}: unreadable ({error}); ignored")
        return None
    if not isinstance(record, dict):
        _warn(warnings, f"{os.path.basename(path)}: not a JSON object; ignored")
        return None
    if record.get("version") != STATE_VERSION:
        _warn(
            warnings,
            f"{os.path.basename(path)}: version {record.get('version')!r} "
            f"!= {STATE_VERSION}; ignored",
        )
        return None
    return record


def load_state(state_dir: str) -> PersistedState:
    """Load persisted engine state from ``state_dir`` (missing pieces and
    corrupt files degrade to empty state, recorded in ``warnings``)."""
    state = PersistedState()
    if not os.path.isdir(state_dir):
        return state

    record = _read_json(os.path.join(state_dir, PLANS_FILE), state.warnings)
    if record is not None:
        schemas = record.get("schemas")
        if isinstance(schemas, dict):
            for fingerprint, entry in schemas.items():
                plans = entry.get("plans") if isinstance(entry, dict) else None
                if not isinstance(plans, dict):
                    continue
                per_schema: dict[str, Plan] = {}
                for signature, plan_record in plans.items():
                    try:
                        per_schema[signature] = Plan.from_dict(plan_record)
                    except (KeyError, TypeError, ValueError) as error:
                        _warn(
                            state.warnings,
                            f"{PLANS_FILE}: plan {fingerprint[:12]}/{signature}: "
                            f"{error}; skipped",
                        )
                if per_schema:
                    state.plans[fingerprint] = per_schema
                    name = entry.get("name") if isinstance(entry, dict) else None
                    if isinstance(name, str):
                        state.plan_names[fingerprint] = name

    record = _read_json(os.path.join(state_dir, TELEMETRY_FILE), state.warnings)
    if record is not None:
        try:
            state.telemetry = PlanTelemetry.from_dict(record)
        except (ValueError, TypeError) as error:
            _warn(
                state.warnings,
                f"{TELEMETRY_FILE}: corrupt payload ({error}); ignored",
            )

    record = _read_json(os.path.join(state_dir, COST_MODEL_FILE), state.warnings)
    if record is not None:
        try:
            state.cost_model = CostModel.from_dict(record)
        except (ValueError, TypeError) as error:
            _warn(
                state.warnings,
                f"{COST_MODEL_FILE}: corrupt payload ({error}); ignored",
            )

    record = _read_json(os.path.join(state_dir, DECISIONS_FILE), state.warnings)
    if record is not None:
        entries = record.get("entries")
        if isinstance(entries, list):
            for item in entries:
                if not (
                    isinstance(item, list) and len(item) == 2
                    and isinstance(item[0], list) and len(item[0]) == 3
                    and isinstance(item[1], dict)
                ):
                    continue
                key = (str(item[0][0]), str(item[0][1]), str(item[0][2]))
                state.decisions.append((key, item[1]))

    record = _read_json(os.path.join(state_dir, ENGINE_STATS_FILE), state.warnings)
    if record is not None:
        stats = record.get("stats")
        if isinstance(stats, dict):
            state.engine_stats = stats

    record = _read_json(os.path.join(state_dir, SCHEDULER_FILE), state.warnings)
    if record is not None:
        for name, validate in _SCHEDULER_TUNABLES.items():
            if name not in record:
                continue
            try:
                state.scheduler[name] = validate(record[name])
            except (ValueError, TypeError) as error:
                _warn(
                    state.warnings,
                    f"{SCHEDULER_FILE}: {name}: {error}; ignored",
                )
    return state


def cap_decision_records(records: list, cap: int) -> list:
    """State-dir hygiene: keep at most ``cap`` persisted decisions per
    schema fingerprint.  ``records`` is :meth:`DecisionCache.to_records`
    output (LRU order, oldest first); the newest entries per schema win
    and the surviving records keep their relative order, so a reloaded
    cache preserves recency."""
    if cap < 1:
        raise ValueError(f"decision cap must be positive, got {cap}")
    kept: list = []
    per_schema: dict[str, int] = {}
    for item in reversed(records):
        fingerprint = str(item[0][1])
        seen = per_schema.get(fingerprint, 0)
        if seen >= cap:
            continue
        per_schema[fingerprint] = seen + 1
        kept.append(item)
    kept.reverse()
    return kept


def save_state(
    state_dir: str,
    *,
    registry=None,
    telemetry: PlanTelemetry | None = None,
    cost_model: CostModel | None = None,
    cache=None,
    scheduler: dict[str, Any] | None = None,
    decision_cap_per_schema: int | None = None,
    telemetry_max_age_days: float | None = None,
    engine_stats: dict[str, Any] | None = None,
    metrics_text: str | None = None,
) -> None:
    """Serialize the given engine components into ``state_dir`` (created
    if missing).  Pieces passed as ``None`` are left untouched on disk.

    ``decision_cap_per_schema`` and ``telemetry_max_age_days`` apply the
    hygiene trims (see the module docstring) to what is *written*; the
    in-memory cache and telemetry are never mutated.  ``engine_stats``
    (an ``EngineStats.as_dict()`` snapshot) and ``metrics_text`` (a
    rendered Prometheus textfile) are observability exports riding along
    with the state."""
    os.makedirs(state_dir, exist_ok=True)

    def write(name: str, payload: dict[str, Any]) -> None:
        _atomic_write_json(
            os.path.join(state_dir, name),
            {"version": STATE_VERSION, **payload},
        )

    if registry is not None:
        # plan_records() folds in plans adopted for schemas this run
        # never registered, so workloads sharing a state dir do not
        # erase each other's warm plans
        schemas: dict[str, Any] = {
            fingerprint: {
                "name": name,
                "plans": {
                    signature: plan.to_dict()
                    for signature, plan in sorted(per_schema.items())
                },
            }
            for fingerprint, (name, per_schema)
            in registry.plan_records().items()
        }
        write(PLANS_FILE, {"schemas": schemas})
    if telemetry is not None:
        if telemetry_max_age_days is not None:
            # prune a rebuilt copy so the live engine keeps its rows
            aged = PlanTelemetry.from_dict(telemetry.to_dict())
            aged.prune(telemetry_max_age_days * 86400.0)
            write(TELEMETRY_FILE, aged.to_dict())
        else:
            write(TELEMETRY_FILE, telemetry.to_dict())
    if cost_model is not None:
        write(COST_MODEL_FILE, cost_model.to_dict())
    if cache is not None:
        records = cache.to_records()
        if decision_cap_per_schema is not None:
            records = cap_decision_records(records, decision_cap_per_schema)
        write(DECISIONS_FILE, {"entries": records})
    if scheduler is not None:
        write(SCHEDULER_FILE, dict(scheduler))
    if engine_stats is not None:
        write(ENGINE_STATS_FILE, {"stats": dict(engine_stats)})
    if metrics_text is not None:
        _atomic_write_text(os.path.join(state_dir, METRICS_FILE), metrics_text)
