"""The batch satisfiability engine.

:class:`BatchEngine` layers three amortizations over
:func:`repro.sat.dispatch.decide` for the serve-many-queries-per-schema
workload:

1. **per-schema artifacts** — DTD parsing, classification, and graph
   construction run once per schema in the :class:`SchemaRegistry` and are
   passed to the dispatcher through its ``artifacts`` hook;
2. **plan caching** — routing goes through the query planner
   (:mod:`repro.sat.planner`); the resulting
   :class:`~repro.sat.planner.Plan` is cached per feature signature on the
   schema's artifact record, so a warm run resolves routing with zero
   planner invocations and jobs group by plan;
3. **decision caching** — a bounded LRU keyed on canonical query form ×
   schema fingerprint (:class:`DecisionCache`), so repeated questions
   (including syntactic variants) skip ``decide()`` entirely;
4. **parallel heavy jobs** — jobs whose plan routes to the heavy
   EXPTIME/NEXPTIME/bounded procedures (``plan.route == "pool"``) run on a
   ``concurrent.futures`` process pool, while PTIME plans are decided
   inline (forking a worker would cost more than the decision);
5. **plan-grouped scheduling** — pooled jobs are partitioned by
   ``Plan.telemetry_key`` × schema fingerprint into :class:`PlanGroup`
   chunks and each chunk is dispatched as **one** worker task: the chunk
   pickles the DTD and plan once instead of per job, and the decider
   chain's ``prepare`` hooks (:class:`repro.sat.planner.PlanContexts`)
   run once per chunk, so N groupmates share per-plan setup (the types
   fixpoint's automata, the bounded engine's schema classification and
   word tables) that ungrouped dispatch rebuilds N times.  Disable with
   ``group_by_plan=False`` (``--no-group-by-plan``); grouping is a pure
   scheduling change — verdicts, cache contents, and telemetry verdict
   mixes are identical either way (see ``tests/test_metamorphic.py``).

Identical in-flight questions are coalesced: within one batch, a question
is decided at most once no matter how many jobs ask it.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import EngineError, ReproError
from repro.engine.cache import CachedDecision, CacheKey, DecisionCache, decision_key_for
from repro.engine.registry import SchemaArtifacts, SchemaRegistry
from repro.sat.bounded import Bounds
from repro.sat.costmodel import CostModel, size_bucket
from repro.sat.planner import (
    ExecutionTrace,
    Plan,
    PlanContexts,
    Planner,
    execute_plan,
)
from repro.sat.telemetry import PlanTelemetry, verdict_name
from repro.xpath.ast import Path
from repro.xpath.canonical import canonicalize
from repro.xpath.fragments import features_of
from repro.xpath.parser import parse_query


@dataclass(frozen=True)
class Job:
    """One satisfiability question: a query against a registered schema
    (``schema=None`` decides over unconstrained trees)."""

    query: str | Path
    schema: str | None = None
    id: str | None = None

    @classmethod
    def coerce(cls, raw: "Job | dict | tuple | str") -> "Job":
        if isinstance(raw, cls):
            job = raw
        elif isinstance(raw, str):
            job = cls(query=raw)
        elif isinstance(raw, tuple):
            if not 1 <= len(raw) <= 3:
                raise EngineError(f"job tuple must be (query[, schema[, id]]): {raw!r}")
            job = cls(*raw)
        elif isinstance(raw, dict):
            if "query" not in raw:
                raise EngineError(f"job record missing 'query': {raw!r}")
            job = cls(query=raw["query"], schema=raw.get("schema"), id=raw.get("id"))
        else:
            raise EngineError(f"cannot interpret job {raw!r}")
        if not isinstance(job.query, (str, Path)):
            raise EngineError(
                f"job query must be an XPath string or AST, got {job.query!r}"
            )
        if job.schema is not None and not isinstance(job.schema, str):
            raise EngineError(f"job schema must be a string, got {job.schema!r}")
        return job

    @property
    def query_text(self) -> str:
        return self.query if isinstance(self.query, str) else str(self.query)


@dataclass
class JobResult:
    """Structured outcome of one job."""

    id: str
    query: str
    schema: str | None
    fingerprint: str | None
    satisfiable: bool | None
    method: str
    reason: str = ""
    route: str = "inline"          # cache | inline | pool | error
    cached: bool = False
    elapsed_ms: float = 0.0
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        record = {
            "id": self.id,
            "query": self.query,
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "satisfiable": self.satisfiable,
            "method": self.method,
            "route": self.route,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.reason:
            record["reason"] = self.reason
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class EngineStats:
    """Aggregate counters for one :meth:`BatchEngine.run`."""

    jobs: int = 0
    errors: int = 0
    decide_calls: int = 0
    inline_decides: int = 0
    pool_decides: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    planner_invocations: int = 0   # plans built during this run
    plan_cache_hits: int = 0       # routing resolved from a plan cache
    # plan-grouped scheduling (this run): chunks dispatched, unique jobs
    # executed inside a chunk, jobs that reused a groupmate's prepare()
    # context, and chunks whose *primary* prepare() failed (they fell
    # back to ungrouped per-job execution but still ran as one task)
    plan_groups: int = 0
    grouped_jobs: int = 0
    setup_reuse: int = 0
    prepare_fallbacks: int = 0
    group_sizes: list[int] = field(default_factory=list)
    # engine-lifetime totals, not per-run deltas: persisted state is
    # adopted at engine construction / schema registration, before any
    # run starts, so a per-run delta would always read 0
    persisted_plans_loaded: int = 0
    persisted_decisions_loaded: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    cache: dict[str, Any] = field(default_factory=dict)
    registry: dict[str, Any] = field(default_factory=dict)
    # per-plan telemetry summary — like the persisted_* fields this is an
    # engine-lifetime snapshot (telemetry accumulates across runs and
    # merges persisted state), not a per-run delta: counts reconcile with
    # the sum of decide_calls over the engine's whole history
    plans: dict[str, Any] = field(default_factory=dict)

    def jobs_per_group(self, q: float) -> int:
        """The ``q``-quantile of jobs per dispatched group chunk (0 when
        nothing was grouped this run)."""
        if not self.group_sizes:
            return 0
        ordered = sorted(self.group_sizes)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[index]

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "errors": self.errors,
            "decide_calls": self.decide_calls,
            "inline_decides": self.inline_decides,
            "pool_decides": self.pool_decides,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "planner_invocations": self.planner_invocations,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_groups": self.plan_groups,
            "grouped_jobs": self.grouped_jobs,
            "setup_reuse": self.setup_reuse,
            "prepare_fallbacks": self.prepare_fallbacks,
            "jobs_per_group_p50": self.jobs_per_group(0.5),
            "jobs_per_group_p90": self.jobs_per_group(0.9),
            "persisted_plans_loaded": self.persisted_plans_loaded,
            "persisted_decisions_loaded": self.persisted_decisions_loaded,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 4),
            "cache": dict(self.cache),
            "registry": dict(self.registry),
            "plans": dict(self.plans),
        }

    def describe(self) -> str:
        lines = [
            f"jobs          : {self.jobs} ({self.errors} errors)",
            f"decide() calls: {self.decide_calls} "
            f"({self.inline_decides} inline, {self.pool_decides} pooled, "
            f"{self.workers} workers)",
            f"planner       : {self.planner_invocations} plans built, "
            f"{self.plan_cache_hits} plan-cache hits, "
            f"{self.persisted_plans_loaded} persisted plans loaded",
            f"plan groups   : {self.plan_groups} dispatched, "
            f"{self.grouped_jobs} jobs grouped, {self.setup_reuse} setup reuses, "
            f"{self.prepare_fallbacks} prepare fallbacks "
            f"(p50 {self.jobs_per_group(0.5)}, p90 {self.jobs_per_group(0.9)} "
            f"jobs/group)",
            f"cache         : {self.cache_hits} hits, {self.coalesced} coalesced, "
            f"{self.cache.get('size', 0)}/{self.cache.get('capacity', 0)} entries, "
            f"{self.cache.get('evictions', 0)} evictions "
            f"(lifetime hit rate {self.cache.get('hit_rate', 0.0):.1%})",
            f"schemas       : {self.registry.get('schemas', 0)} registered, "
            f"{self.registry.get('builds', 0)} artifact builds, "
            f"{self.registry.get('dedup_hits', 0)} dedup hits",
            f"wall time     : {self.elapsed_s:.3f}s",
        ]
        return "\n".join(lines)


@dataclass
class BatchReport:
    """Results plus engine statistics for one batch run."""

    results: list[JobResult]
    stats: EngineStats

    def verdict_counts(self) -> dict[str, int]:
        counts = {"sat": 0, "unsat": 0, "unknown": 0, "error": 0}
        for result in self.results:
            if result.error is not None:
                counts["error"] += 1
            elif result.satisfiable is True:
                counts["sat"] += 1
            elif result.satisfiable is False:
                counts["unsat"] += 1
            else:
                counts["unknown"] += 1
        return counts


def plan_route(query: Path, artifacts: SchemaArtifacts | None) -> str:
    """``"inline"`` for queries whose plan is PTIME, ``"pool"`` for those
    routed to the heavy EXPTIME/NEXPTIME/bounded procedures.

    Thin wrapper over the query planner (kept for callers that only care
    about the inline/pool split); the :class:`BatchEngine` itself consults
    the full :class:`~repro.sat.planner.Plan` from the schema's plan
    cache.
    """
    return _ROUTE_PLANNER.plan_query(query, artifacts=artifacts).route


#: module-level planner backing the plan_route convenience wrapper; plans
#: for registered schemas still land in the shared per-artifact caches
_ROUTE_PLANNER = Planner()


def _pool_decide(
    canonical: Path, dtd, bounds, plan: Plan
) -> tuple[bool | None, str, str, list[tuple[str, float, str]]]:
    """Process-pool entry point: returns the compact decision record plus
    the execution trace (witness trees stay in the worker; the plan and
    the pre-canonicalized query ride along so the worker skips planning
    and canonicalization; the trace rides back so the parent's telemetry
    and cost model see pooled decisions too)."""
    trace = ExecutionTrace()
    result = execute_plan(
        plan, canonical, dtd, bounds, pre_canonicalized=True, trace=trace
    )
    return (result.satisfiable, result.method, result.reason, trace.attempts)


#: one group outcome per question: (satisfiable, method, reason,
#: error-or-None, trace attempts)
GroupOutcome = tuple[bool | None, str, str, str | None, list[tuple[str, float, str]]]


def _decide_group(
    canonicals: list[Path], dtd, bounds, plan: Plan
) -> tuple[list[GroupOutcome], bool, str | None]:
    """Decide one :class:`PlanGroup` chunk — shared by the process-pool
    entry point and the inline (``workers == 1``) grouped path.

    Each chain member's ``prepare`` hook runs **once per chunk**, lazily
    on the member's first execution (:class:`PlanContexts`), so a chunk
    whose primary answers everything never pays for fallback setup.  A
    ``prepare`` that raises degrades that decider to ungrouped per-job
    execution instead of failing anything, and *any* exception from one
    question becomes that question's error without poisoning groupmates
    (mirroring how ungrouped pool futures fail per question).  Returns
    ``(outcomes, shared_setup, prepare_error)``.
    """
    contexts = PlanContexts(plan, dtd)
    # build the primary's context eagerly: every question runs it, and a
    # failing prepare should be visible even if the first question errors.
    # shared_setup is pinned here — a fallback context built mid-chunk
    # must not retroactively count earlier questions as setup reuses
    contexts.get(plan.decider)
    shared_setup = contexts.built > 0
    outcomes: list[GroupOutcome] = []
    for canonical in canonicals:
        trace = ExecutionTrace()
        try:
            result = execute_plan(
                plan, canonical, dtd, bounds,
                pre_canonicalized=True, trace=trace,
                contexts=contexts,
            )
            outcomes.append(
                (result.satisfiable, result.method, result.reason, None,
                 trace.attempts)
            )
        except Exception as error:
            outcomes.append((None, "error", "", str(error), trace.attempts))
    return outcomes, shared_setup, contexts.prepare_error


@dataclass
class _GroupEntry:
    """One unique question queued in a plan group: its decision-cache
    key, pre-canonicalized query, and every job index awaiting it (the
    first asked; the rest coalesced onto it)."""

    key: CacheKey
    canonical: Path
    indices: list[int]


@dataclass
class PlanGroup:
    """Pooled jobs sharing one routing decision (``Plan.telemetry_key``)
    against one schema — the scheduler's unit of shared per-plan setup.

    ``dispatched`` marks how many leading entries were already submitted
    as full chunks during the job scan (keeping the pool busy while the
    scan continues); only the tail past it awaits post-scan dispatch.
    """

    plan: Plan
    artifacts: SchemaArtifacts | None
    entries: list[_GroupEntry] = field(default_factory=list)
    dispatched: int = 0


#: scheduler tunable defaults (overridden by constructor arguments, then
#: by a state dir's persisted ``scheduler.json``, in that order)
DEFAULT_GROUP_CHUNK_SIZE = 16
DEFAULT_DECISION_CAP_PER_SCHEMA = 512
DEFAULT_TELEMETRY_MAX_AGE_DAYS = 30.0


class BatchEngine:
    """Execute batches of ``(query, schema_ref)`` jobs with schema-artifact
    reuse, plan-cached routing, decision caching, and a plan-grouped
    process pool for heavy fragments."""

    #: worker-pool constructor; a seam for tests that simulate worker
    #: crashes without burning real fork time
    _executor_factory = ProcessPoolExecutor

    def __init__(
        self,
        registry: SchemaRegistry | None = None,
        cache: DecisionCache | None = None,
        workers: int = 1,
        bounds: Bounds | None = None,
        planner: Planner | None = None,
        cost_model: CostModel | None = None,
        telemetry: PlanTelemetry | None = None,
        state_dir: str | None = None,
        group_by_plan: bool | None = None,
        group_chunk_size: int | None = None,
        decision_cap_per_schema: int | None = None,
        telemetry_max_age_days: float | None = None,
    ):
        if workers < 1:
            raise EngineError(f"workers must be positive, got {workers}")
        if group_chunk_size is not None and group_chunk_size < 1:
            raise EngineError(
                f"group_chunk_size must be positive, got {group_chunk_size}"
            )
        if decision_cap_per_schema is not None and decision_cap_per_schema < 1:
            raise EngineError(
                f"decision_cap_per_schema must be positive, "
                f"got {decision_cap_per_schema}"
            )
        if telemetry_max_age_days is not None and telemetry_max_age_days <= 0:
            raise EngineError(
                f"telemetry_max_age_days must be positive, "
                f"got {telemetry_max_age_days}"
            )
        # scheduler tunables: explicit constructor arguments always win;
        # ones left None take the state dir's persisted values (if any),
        # then the defaults
        self._explicit_tunables = {
            name
            for name, value in (
                ("group_by_plan", group_by_plan),
                ("group_chunk_size", group_chunk_size),
                ("decision_cap_per_schema", decision_cap_per_schema),
                ("telemetry_max_age_days", telemetry_max_age_days),
            )
            if value is not None
        }
        self.group_by_plan = group_by_plan if group_by_plan is not None else True
        self.group_chunk_size = (
            group_chunk_size if group_chunk_size is not None
            else DEFAULT_GROUP_CHUNK_SIZE
        )
        self.decision_cap_per_schema = (
            decision_cap_per_schema if decision_cap_per_schema is not None
            else DEFAULT_DECISION_CAP_PER_SCHEMA
        )
        self.telemetry_max_age_days = (
            telemetry_max_age_days if telemetry_max_age_days is not None
            else DEFAULT_TELEMETRY_MAX_AGE_DAYS
        )
        self.registry = registry if registry is not None else SchemaRegistry()
        self.cache = cache if cache is not None else DecisionCache()
        if planner is not None:
            # a caller-supplied planner is never mutated: if it carries a
            # cost model the engine feeds that one, otherwise the engine
            # still measures (into its own model) but the planner keeps
            # planning statically — attaching our model behind the
            # caller's back would change routing process-wide (e.g. for
            # DEFAULT_PLANNER)
            if (
                cost_model is not None
                and planner.cost_model is not None
                and planner.cost_model is not cost_model
            ):
                raise EngineError(
                    "planner already carries a different cost model; pass "
                    "one of cost_model= or planner=, not conflicting both"
                )
            self.planner = planner
            self.cost_model = (
                planner.cost_model if planner.cost_model is not None
                else (cost_model if cost_model is not None else CostModel())
            )
        else:
            self.cost_model = cost_model if cost_model is not None else CostModel()
            self.planner = Planner(cost_model=self.cost_model)
        self.telemetry = telemetry if telemetry is not None else PlanTelemetry()
        self.workers = workers
        self.bounds = bounds
        self.persisted_decisions_loaded = 0
        self.state_warnings: list[str] = []
        self.state_dir = state_dir
        if state_dir is not None:
            self.load_state(state_dir)

    # -- state persistence --------------------------------------------------
    def load_state(self, state_dir: str) -> int:
        """Warm this engine from a persisted state directory: plan caches
        (applied now for registered schemas, at registration for later
        ones), telemetry, cost-model measurements, cached decisions, and
        scheduler tunables (which fill every tunable the constructor left
        unset).  Returns the number of plans available from persistence."""
        from repro.engine.state import load_state

        state = load_state(state_dir)
        self.state_warnings.extend(state.warnings)
        self.registry.adopt_plans(state.plans, names=state.plan_names)
        if state.telemetry is not None:
            self.telemetry.merge(state.telemetry)
        if state.cost_model is not None:
            self.cost_model.merge(state.cost_model)
        if state.decisions:
            self.persisted_decisions_loaded += self.cache.load_records(state.decisions)
        for name in (
            "group_by_plan", "group_chunk_size",
            "decision_cap_per_schema", "telemetry_max_age_days",
        ):
            if name in state.scheduler and name not in self._explicit_tunables:
                setattr(self, name, state.scheduler[name])
        return state.plan_count

    def save_state(self, state_dir: str | None = None) -> str:
        """Persist plan caches, telemetry, cost model, the decision cache,
        and the scheduler tunables next to batch results; returns the
        directory written.  State-dir hygiene applies on the way out:
        cached decisions are capped per schema and telemetry rows not
        seen within ``telemetry_max_age_days`` are aged out."""
        from repro.engine.state import save_state

        target = state_dir if state_dir is not None else self.state_dir
        if target is None:
            raise EngineError("no state directory given (engine has no state_dir)")
        save_state(
            target,
            registry=self.registry,
            telemetry=self.telemetry,
            cost_model=self.cost_model,
            cache=self.cache,
            scheduler={
                "group_by_plan": self.group_by_plan,
                "group_chunk_size": self.group_chunk_size,
                "decision_cap_per_schema": self.decision_cap_per_schema,
                "telemetry_max_age_days": self.telemetry_max_age_days,
            },
            decision_cap_per_schema=self.decision_cap_per_schema,
            telemetry_max_age_days=self.telemetry_max_age_days,
        )
        return target

    def retune(self) -> int:
        """Drop every cached plan — including persisted plans waiting for
        their schema's registration — so the next request replans against
        the cost model's current measurements (verdicts cannot change —
        only chain order and inline/pool routing).  Returns the number of
        plans dropped."""
        return (
            self.planner.invalidate(*self.registry)
            + self.registry.discard_pending_plans()
        )

    # -- execution ----------------------------------------------------------
    def run(self, jobs: Iterable[Job | dict | tuple | str]) -> BatchReport:
        """Decide every job; returns per-job results (input order) and
        aggregate stats for this run."""
        start = time.perf_counter()
        stats = EngineStats(workers=self.workers)
        planner_invocations_before = self.planner.invocations
        plan_hits_before = self.planner.cache_hits
        results: list[JobResult | None] = []
        # key -> (future, indices of jobs awaiting it, plan, artifacts)
        pending: dict[CacheKey, tuple[Future, list[int], Plan, SchemaArtifacts | None]] = {}
        # plan-grouped scheduling: (schema fingerprint, telemetry key) ->
        # group of queued pooled jobs, plus the key -> entry map that
        # coalesces duplicates queued into a group
        groups: dict[tuple[str | None, str], PlanGroup] = {}
        grouped_keys: dict[CacheKey, _GroupEntry] = {}
        # full chunks submitted eagerly during the scan, drained with the
        # post-scan tails: (group, chunk entries, future)
        group_futures: list[tuple[PlanGroup, list[_GroupEntry], Future]] = []
        executor: ProcessPoolExecutor | None = None

        try:
            for index, raw in enumerate(jobs):
                results.append(None)
                stats.jobs += 1
                try:
                    job = Job.coerce(raw)
                    query = (
                        parse_query(job.query)
                        if isinstance(job.query, str)
                        else job.query
                    )
                    artifacts = (
                        self.registry.get(job.schema)
                        if job.schema is not None
                        else None
                    )
                except ReproError as error:
                    stats.errors += 1
                    results[index] = self._error_result(raw, error)
                    continue

                # one canonicalization per job, shared by the cache key and
                # the decision (execute_plan skips its canonicalize pass)
                canonical = canonicalize(query)
                key = decision_key_for(
                    canonical, artifacts.fingerprint if artifacts else None, self.bounds
                )
                cached = self.cache.get(key)
                if cached is not None:
                    stats.cache_hits += 1
                    results[index] = self._result(
                        job, artifacts, cached, route="cache", cached=True
                    )
                    continue
                if key in grouped_keys:
                    stats.coalesced += 1
                    grouped_keys[key].indices.append(index)
                    results[index] = self._result(
                        job, artifacts,
                        CachedDecision(None, "pending"), route="pool",
                    )
                    continue
                if key in pending:
                    stats.coalesced += 1
                    pending[key][1].append(index)
                    results[index] = self._result(
                        job, artifacts,
                        CachedDecision(None, "pending"), route="pool",
                    )
                    continue

                plan = self.planner.plan_for(features_of(query), artifacts=artifacts)
                if plan.route == "pool" and self.group_by_plan:
                    # queue for plan-grouped dispatch after the scan; the
                    # group pays worker setup (prepare hooks, DTD pickle)
                    # once for all its jobs
                    group_key = (
                        artifacts.fingerprint if artifacts else None,
                        plan.telemetry_key,
                    )
                    group = groups.get(group_key)
                    if group is None:
                        group = groups[group_key] = PlanGroup(
                            plan=plan, artifacts=artifacts
                        )
                    entry = _GroupEntry(key=key, canonical=canonical, indices=[index])
                    group.entries.append(entry)
                    grouped_keys[key] = entry
                    results[index] = self._result(
                        job, artifacts, CachedDecision(None, "pending"),
                        route="pool",
                    )
                    # a full chunk goes to the pool immediately so workers
                    # overlap with the rest of the scan (later duplicates
                    # still coalesce: the entries stay live until drain)
                    if (
                        self.workers > 1
                        and len(group.entries) - group.dispatched
                        >= self.group_chunk_size
                    ):
                        if executor is None:
                            executor = self._executor_factory(
                                max_workers=self.workers
                            )
                        chunk = group.entries[
                            group.dispatched:
                            group.dispatched + self.group_chunk_size
                        ]
                        group.dispatched += len(chunk)
                        group_futures.append((
                            group, chunk,
                            executor.submit(
                                _decide_group,
                                [e.canonical for e in chunk],
                                artifacts.dtd if artifacts else None,
                                self.bounds, group.plan,
                            ),
                        ))
                    continue
                if plan.route == "pool" and self.workers > 1:
                    if executor is None:
                        executor = self._executor_factory(max_workers=self.workers)
                    future = executor.submit(
                        _pool_decide, canonical,
                        artifacts.dtd if artifacts else None, self.bounds, plan,
                    )
                    stats.decide_calls += 1
                    stats.pool_decides += 1
                    pending[key] = (future, [index], plan, artifacts)
                    results[index] = self._result(
                        job, artifacts, CachedDecision(None, "pending"),
                        route="pool",
                    )
                    continue

                job_start = time.perf_counter()
                trace = ExecutionTrace()
                try:
                    outcome = execute_plan(
                        plan, canonical,
                        artifacts.dtd if artifacts else None, self.bounds,
                        pre_canonicalized=True, trace=trace,
                    )
                    decision = CachedDecision(
                        outcome.satisfiable, outcome.method, outcome.reason
                    )
                except ReproError as error:
                    stats.errors += 1
                    stats.decide_calls += 1
                    stats.inline_decides += 1
                    self._observe(plan, artifacts, trace, "error")
                    results[index] = self._error_result(raw, error)
                    continue
                stats.decide_calls += 1
                stats.inline_decides += 1
                elapsed_ms = (time.perf_counter() - job_start) * 1e3
                self._observe(
                    plan, artifacts, trace,
                    verdict_name(outcome.satisfiable),
                )
                self.cache.put(key, decision)
                results[index] = self._result(
                    job, artifacts, decision, route="inline",
                    elapsed_ms=elapsed_ms,
                )

            self._drain(pending, results, stats)
            # the executor stays owned by this frame: creating it here
            # (not inside the helper) keeps the finally below responsible
            # for shutdown even if dispatch raises mid-submit
            if (
                executor is None and self.workers > 1
                and any(
                    len(group.entries) > group.dispatched
                    for group in groups.values()
                )
            ):
                executor = self._executor_factory(max_workers=self.workers)
            self._dispatch_groups(groups, group_futures, results, stats, executor)
        finally:
            if executor is not None:
                executor.shutdown()

        stats.elapsed_s = time.perf_counter() - start
        stats.planner_invocations = self.planner.invocations - planner_invocations_before
        stats.plan_cache_hits = self.planner.cache_hits - plan_hits_before
        stats.persisted_plans_loaded = self.registry.persisted_plans
        stats.persisted_decisions_loaded = self.persisted_decisions_loaded
        stats.cache = self.cache.stats()
        stats.registry = self.registry.stats()
        stats.plans = self.telemetry.summary()
        return BatchReport(results=[r for r in results if r is not None], stats=stats)

    # -- helpers ------------------------------------------------------------
    def _dispatch_groups(
        self,
        groups: dict[tuple[str | None, str], PlanGroup],
        group_futures: list[tuple[PlanGroup, list[_GroupEntry], Future]],
        results: list[JobResult | None],
        stats: EngineStats,
        executor: ProcessPoolExecutor | None,
    ) -> None:
        """Dispatch every group's remaining tail in chunks of
        ``group_chunk_size`` — one worker task per chunk on ``executor``
        when given (the caller owns its lifecycle), inline otherwise —
        then absorb the outcomes of all chunks, including the full ones
        the scan already submitted (``group_futures``)."""
        tails: list[tuple[PlanGroup, list[_GroupEntry]]] = []
        for group in groups.values():
            for start in range(
                group.dispatched, len(group.entries), self.group_chunk_size
            ):
                tails.append(
                    (group, group.entries[start:start + self.group_chunk_size])
                )
        if executor is not None:
            submitted = list(group_futures)
            for group, chunk in tails:
                dtd = group.artifacts.dtd if group.artifacts else None
                future = executor.submit(
                    _decide_group,
                    [entry.canonical for entry in chunk],
                    dtd, self.bounds, group.plan,
                )
                submitted.append((group, chunk, future))
            for group, chunk, future in submitted:
                stats.decide_calls += len(chunk)
                stats.pool_decides += len(chunk)
                try:
                    outcomes, shared_setup, prepare_error = future.result()
                except Exception as error:  # worker died (BrokenProcessPool, ...)
                    jobs_hit = sum(len(entry.indices) for entry in chunk)
                    stats.errors += jobs_hit
                    self.telemetry.record_failure(group.plan, jobs_hit)
                    for entry in chunk:
                        for index in entry.indices:
                            result = results[index]
                            result.error = str(error)
                            result.method = "error"
                            result.route = "error"
                    continue
                self._absorb_group(
                    group, chunk, outcomes, shared_setup, prepare_error,
                    results, stats, route="pool",
                )
        else:
            assert not group_futures  # eager submission implies a pool
            for group, chunk in tails:
                dtd = group.artifacts.dtd if group.artifacts else None
                stats.decide_calls += len(chunk)
                stats.inline_decides += len(chunk)
                outcomes, shared_setup, prepare_error = _decide_group(
                    [entry.canonical for entry in chunk],
                    dtd, self.bounds, group.plan,
                )
                self._absorb_group(
                    group, chunk, outcomes, shared_setup, prepare_error,
                    results, stats, route="inline",
                )

    def _absorb_group(
        self,
        group: PlanGroup,
        chunk: list[_GroupEntry],
        outcomes: list[GroupOutcome],
        shared_setup: bool,
        prepare_error: str | None,
        results: list[JobResult | None],
        stats: EngineStats,
        route: str,
    ) -> None:
        """Fold one chunk's outcomes into results, the decision cache,
        telemetry, and the cost model."""
        plan, artifacts = group.plan, group.artifacts
        stats.plan_groups += 1
        stats.group_sizes.append(len(chunk))
        # only a failed *primary* prepare means the chunk ran ungrouped;
        # a fallback hook failing mid-chunk leaves the shared setup intact
        if prepare_error is not None and not shared_setup:
            stats.prepare_fallbacks += 1
        executed = 0
        for entry, outcome in zip(chunk, outcomes):
            satisfiable, method, reason, error, attempts = outcome
            trace = ExecutionTrace(
                attempts=attempts,
                group_size=len(chunk),
                group_lead=executed == 0,
                shared_setup=shared_setup,
            )
            if error is not None:
                # one question failing must not poison its groupmates;
                # every job awaiting it gets the per-job error
                stats.errors += len(entry.indices)
                self._observe(plan, artifacts, trace, "error")
                if len(entry.indices) > 1:
                    self.telemetry.record_failure(plan, len(entry.indices) - 1)
                for index in entry.indices:
                    result = results[index]
                    result.error = error
                    result.method = "error"
                    result.route = "error"
                continue
            # errored entries are excluded so EngineStats and the per-plan
            # telemetry rows report the same grouped-job/reuse counts
            stats.grouped_jobs += 1
            if shared_setup and executed > 0:
                stats.setup_reuse += 1
            executed += 1
            self._observe(plan, artifacts, trace, verdict_name(satisfiable))
            decision = CachedDecision(satisfiable, method, reason)
            self.cache.put(entry.key, decision)
            for ask_position, index in enumerate(entry.indices):
                result = results[index]
                result.satisfiable = satisfiable
                result.method = method
                result.reason = reason
                result.route = route
                result.cached = ask_position > 0  # coalesced onto the first ask
                result.elapsed_ms = trace.elapsed_ms if ask_position == 0 else 0.0

    def _drain(self, pending, results, stats) -> None:
        for key, (future, indices, plan, artifacts) in pending.items():
            try:
                satisfiable, method, reason, attempts = future.result()
            except Exception as error:  # worker died or raised (e.g. BrokenProcessPool)
                stats.errors += len(indices)
                self.telemetry.record_failure(plan, len(indices))
                for index in indices:
                    results[index].error = str(error)
                    results[index].method = "error"
                    results[index].route = "error"
                continue
            trace = ExecutionTrace(attempts=attempts)
            self._observe(plan, artifacts, trace, verdict_name(satisfiable))
            decision = CachedDecision(satisfiable, method, reason)
            self.cache.put(key, decision)
            for position, index in enumerate(indices):
                result = results[index]
                result.satisfiable = satisfiable
                result.method = method
                result.reason = reason
                result.cached = position > 0  # coalesced onto the first ask

    def _observe(
        self,
        plan: Plan,
        artifacts: SchemaArtifacts | None,
        trace: ExecutionTrace,
        verdict: str,
    ) -> None:
        """Feed one plan execution into per-plan telemetry and the cost
        model.

        The recorded latency is the decider-chain time from the trace —
        the same definition on the inline and pooled paths, so one plan's
        histogram never mixes wall time (with rewrite/fork/IPC overhead)
        with pure decide time.  Only *conclusive* attempts (sat/unsat)
        become cost-model samples: an `unknown` is cheap precisely
        because the decider gave up, and counting it would promote
        fast-but-useless semi-decision procedures to chain primary (they
        would then run on every job only to fall through)."""
        if verdict == "error":
            # a failed execution has no meaningful decision latency — a
            # ~0 ms sample would drag the histogram down (same rule as
            # the pooled worker-death path)
            self.telemetry.record_failure(plan)
        else:
            self.telemetry.record(
                plan, trace.elapsed_ms, verdict,
                decider=trace.decider, fallback=trace.fallback_used,
                group_size=trace.group_size, group_lead=trace.group_lead,
                shared_setup=trace.shared_setup,
            )
        bucket = artifacts.cost_bucket if artifacts else size_bucket(None)
        for name, attempt_ms, outcome in trace.attempts:
            if outcome in ("sat", "unsat"):
                self.cost_model.observe(plan.signature, bucket, name, attempt_ms)

    def _result(
        self,
        job: Job,
        artifacts: SchemaArtifacts | None,
        decision: CachedDecision,
        route: str,
        cached: bool = False,
        elapsed_ms: float = 0.0,
    ) -> JobResult:
        return JobResult(
            id=job.id if job.id is not None else job.query_text,
            query=job.query_text,
            schema=job.schema,
            fingerprint=artifacts.fingerprint if artifacts else None,
            satisfiable=decision.satisfiable,
            method=decision.method,
            reason=decision.reason,
            route=route,
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    def _error_result(self, raw, error: ReproError) -> JobResult:
        query_text = schema = job_id = None
        try:
            job = Job.coerce(raw)
            query_text, schema, job_id = job.query_text, job.schema, job.id
        except ReproError:
            query_text = repr(raw)
        return JobResult(
            id=job_id if job_id is not None else (query_text or ""),
            query=query_text or "",
            schema=schema,
            fingerprint=None,
            satisfiable=None,
            method="error",
            route="error",
            error=str(error),
        )
