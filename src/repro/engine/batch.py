"""The batch satisfiability engine.

:class:`BatchEngine` layers three amortizations over
:func:`repro.sat.dispatch.decide` for the serve-many-queries-per-schema
workload:

1. **per-schema artifacts** — DTD parsing, classification, and graph
   construction run once per schema in the :class:`SchemaRegistry` and are
   passed to the dispatcher through its ``artifacts`` hook;
2. **plan caching** — routing goes through the query planner
   (:mod:`repro.sat.planner`); the resulting
   :class:`~repro.sat.planner.Plan` is cached per feature signature on the
   schema's artifact record, so a warm run resolves routing with zero
   planner invocations and jobs group by plan;
3. **decision caching** — a bounded LRU keyed on canonical query form ×
   schema fingerprint (:class:`DecisionCache`), so repeated questions
   (including syntactic variants) skip ``decide()`` entirely;
4. **parallel heavy jobs** — jobs whose plan routes to the heavy
   EXPTIME/NEXPTIME/bounded procedures (``plan.route == "pool"``) run on a
   ``concurrent.futures`` process pool, while PTIME plans are decided
   inline (forking a worker would cost more than the decision).

Identical in-flight questions are coalesced: within one batch, a question
is decided at most once no matter how many jobs ask it.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.errors import EngineError, ReproError
from repro.engine.cache import CachedDecision, CacheKey, DecisionCache, decision_key_for
from repro.engine.registry import SchemaArtifacts, SchemaRegistry
from repro.sat.bounded import Bounds
from repro.sat.planner import Plan, Planner, execute_plan
from repro.xpath.ast import Path
from repro.xpath.canonical import canonicalize
from repro.xpath.fragments import features_of
from repro.xpath.parser import parse_query


@dataclass(frozen=True)
class Job:
    """One satisfiability question: a query against a registered schema
    (``schema=None`` decides over unconstrained trees)."""

    query: str | Path
    schema: str | None = None
    id: str | None = None

    @classmethod
    def coerce(cls, raw: "Job | dict | tuple | str") -> "Job":
        if isinstance(raw, cls):
            job = raw
        elif isinstance(raw, str):
            job = cls(query=raw)
        elif isinstance(raw, tuple):
            if not 1 <= len(raw) <= 3:
                raise EngineError(f"job tuple must be (query[, schema[, id]]): {raw!r}")
            job = cls(*raw)
        elif isinstance(raw, dict):
            if "query" not in raw:
                raise EngineError(f"job record missing 'query': {raw!r}")
            job = cls(query=raw["query"], schema=raw.get("schema"), id=raw.get("id"))
        else:
            raise EngineError(f"cannot interpret job {raw!r}")
        if not isinstance(job.query, (str, Path)):
            raise EngineError(
                f"job query must be an XPath string or AST, got {job.query!r}"
            )
        if job.schema is not None and not isinstance(job.schema, str):
            raise EngineError(f"job schema must be a string, got {job.schema!r}")
        return job

    @property
    def query_text(self) -> str:
        return self.query if isinstance(self.query, str) else str(self.query)


@dataclass
class JobResult:
    """Structured outcome of one job."""

    id: str
    query: str
    schema: str | None
    fingerprint: str | None
    satisfiable: bool | None
    method: str
    reason: str = ""
    route: str = "inline"          # cache | inline | pool | error
    cached: bool = False
    elapsed_ms: float = 0.0
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        record = {
            "id": self.id,
            "query": self.query,
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "satisfiable": self.satisfiable,
            "method": self.method,
            "route": self.route,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.reason:
            record["reason"] = self.reason
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class EngineStats:
    """Aggregate counters for one :meth:`BatchEngine.run`."""

    jobs: int = 0
    errors: int = 0
    decide_calls: int = 0
    inline_decides: int = 0
    pool_decides: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    planner_invocations: int = 0   # plans built during this run
    plan_cache_hits: int = 0       # routing resolved from a plan cache
    workers: int = 1
    elapsed_s: float = 0.0
    cache: dict[str, Any] = field(default_factory=dict)
    registry: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "errors": self.errors,
            "decide_calls": self.decide_calls,
            "inline_decides": self.inline_decides,
            "pool_decides": self.pool_decides,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "planner_invocations": self.planner_invocations,
            "plan_cache_hits": self.plan_cache_hits,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 4),
            "cache": dict(self.cache),
            "registry": dict(self.registry),
        }

    def describe(self) -> str:
        lines = [
            f"jobs          : {self.jobs} ({self.errors} errors)",
            f"decide() calls: {self.decide_calls} "
            f"({self.inline_decides} inline, {self.pool_decides} pooled, "
            f"{self.workers} workers)",
            f"planner       : {self.planner_invocations} plans built, "
            f"{self.plan_cache_hits} plan-cache hits",
            f"cache         : {self.cache_hits} hits, {self.coalesced} coalesced, "
            f"{self.cache.get('size', 0)}/{self.cache.get('capacity', 0)} entries, "
            f"{self.cache.get('evictions', 0)} evictions "
            f"(lifetime hit rate {self.cache.get('hit_rate', 0.0):.1%})",
            f"schemas       : {self.registry.get('schemas', 0)} registered, "
            f"{self.registry.get('builds', 0)} artifact builds, "
            f"{self.registry.get('dedup_hits', 0)} dedup hits",
            f"wall time     : {self.elapsed_s:.3f}s",
        ]
        return "\n".join(lines)


@dataclass
class BatchReport:
    """Results plus engine statistics for one batch run."""

    results: list[JobResult]
    stats: EngineStats

    def verdict_counts(self) -> dict[str, int]:
        counts = {"sat": 0, "unsat": 0, "unknown": 0, "error": 0}
        for result in self.results:
            if result.error is not None:
                counts["error"] += 1
            elif result.satisfiable is True:
                counts["sat"] += 1
            elif result.satisfiable is False:
                counts["unsat"] += 1
            else:
                counts["unknown"] += 1
        return counts


def plan_route(query: Path, artifacts: SchemaArtifacts | None) -> str:
    """``"inline"`` for queries whose plan is PTIME, ``"pool"`` for those
    routed to the heavy EXPTIME/NEXPTIME/bounded procedures.

    Thin wrapper over the query planner (kept for callers that only care
    about the inline/pool split); the :class:`BatchEngine` itself consults
    the full :class:`~repro.sat.planner.Plan` from the schema's plan
    cache.
    """
    return _ROUTE_PLANNER.plan_query(query, artifacts=artifacts).route


#: module-level planner backing the plan_route convenience wrapper; plans
#: for registered schemas still land in the shared per-artifact caches
_ROUTE_PLANNER = Planner()


def _pool_decide(canonical: Path, dtd, bounds, plan: Plan) -> tuple[bool | None, str, str]:
    """Process-pool entry point: returns the compact decision record
    (witness trees stay in the worker; the plan and the pre-canonicalized
    query ride along so the worker skips planning and canonicalization)."""
    result = execute_plan(plan, canonical, dtd, bounds, pre_canonicalized=True)
    return (result.satisfiable, result.method, result.reason)


class BatchEngine:
    """Execute batches of ``(query, schema_ref)`` jobs with schema-artifact
    reuse, plan-cached routing, decision caching, and a process pool for
    heavy fragments."""

    def __init__(
        self,
        registry: SchemaRegistry | None = None,
        cache: DecisionCache | None = None,
        workers: int = 1,
        bounds: Bounds | None = None,
        planner: Planner | None = None,
    ):
        if workers < 1:
            raise EngineError(f"workers must be positive, got {workers}")
        self.registry = registry if registry is not None else SchemaRegistry()
        self.cache = cache if cache is not None else DecisionCache()
        self.planner = planner if planner is not None else Planner()
        self.workers = workers
        self.bounds = bounds

    # -- execution ----------------------------------------------------------
    def run(self, jobs: Iterable[Job | dict | tuple | str]) -> BatchReport:
        """Decide every job; returns per-job results (input order) and
        aggregate stats for this run."""
        start = time.perf_counter()
        stats = EngineStats(workers=self.workers)
        planner_invocations_before = self.planner.invocations
        plan_hits_before = self.planner.cache_hits
        results: list[JobResult | None] = []
        # key -> (future, indices of jobs awaiting it)
        pending: dict[CacheKey, tuple[Future, list[int]]] = {}
        executor: ProcessPoolExecutor | None = None

        try:
            for index, raw in enumerate(jobs):
                results.append(None)
                stats.jobs += 1
                try:
                    job = Job.coerce(raw)
                    query = (
                        parse_query(job.query)
                        if isinstance(job.query, str)
                        else job.query
                    )
                    artifacts = (
                        self.registry.get(job.schema)
                        if job.schema is not None
                        else None
                    )
                except ReproError as error:
                    stats.errors += 1
                    results[index] = self._error_result(raw, error)
                    continue

                # one canonicalization per job, shared by the cache key and
                # the decision (execute_plan skips its canonicalize pass)
                canonical = canonicalize(query)
                key = decision_key_for(
                    canonical, artifacts.fingerprint if artifacts else None, self.bounds
                )
                cached = self.cache.get(key)
                if cached is not None:
                    stats.cache_hits += 1
                    results[index] = self._result(
                        job, artifacts, cached, route="cache", cached=True
                    )
                    continue
                if key in pending:
                    stats.coalesced += 1
                    pending[key][1].append(index)
                    results[index] = self._result(
                        job, artifacts,
                        CachedDecision(None, "pending"), route="pool",
                    )
                    continue

                plan = self.planner.plan_for(features_of(query), artifacts=artifacts)
                if plan.route == "pool" and self.workers > 1:
                    if executor is None:
                        executor = ProcessPoolExecutor(max_workers=self.workers)
                    future = executor.submit(
                        _pool_decide, canonical,
                        artifacts.dtd if artifacts else None, self.bounds, plan,
                    )
                    stats.decide_calls += 1
                    stats.pool_decides += 1
                    pending[key] = (future, [index])
                    results[index] = self._result(
                        job, artifacts, CachedDecision(None, "pending"),
                        route="pool",
                    )
                    continue

                job_start = time.perf_counter()
                try:
                    outcome = execute_plan(
                        plan, canonical,
                        artifacts.dtd if artifacts else None, self.bounds,
                        pre_canonicalized=True,
                    )
                    decision = CachedDecision(
                        outcome.satisfiable, outcome.method, outcome.reason
                    )
                except ReproError as error:
                    stats.errors += 1
                    stats.decide_calls += 1
                    stats.inline_decides += 1
                    results[index] = self._error_result(raw, error)
                    continue
                stats.decide_calls += 1
                stats.inline_decides += 1
                self.cache.put(key, decision)
                results[index] = self._result(
                    job, artifacts, decision, route="inline",
                    elapsed_ms=(time.perf_counter() - job_start) * 1e3,
                )

            self._drain(pending, results, stats)
        finally:
            if executor is not None:
                executor.shutdown()

        stats.elapsed_s = time.perf_counter() - start
        stats.planner_invocations = self.planner.invocations - planner_invocations_before
        stats.plan_cache_hits = self.planner.cache_hits - plan_hits_before
        stats.cache = self.cache.stats()
        stats.registry = self.registry.stats()
        return BatchReport(results=[r for r in results if r is not None], stats=stats)

    # -- helpers ------------------------------------------------------------
    def _drain(self, pending, results, stats) -> None:
        for key, (future, indices) in pending.items():
            try:
                satisfiable, method, reason = future.result()
            except Exception as error:  # worker died or raised (e.g. BrokenProcessPool)
                stats.errors += len(indices)
                for index in indices:
                    results[index].error = str(error)
                    results[index].method = "error"
                    results[index].route = "error"
                continue
            decision = CachedDecision(satisfiable, method, reason)
            self.cache.put(key, decision)
            for position, index in enumerate(indices):
                result = results[index]
                result.satisfiable = satisfiable
                result.method = method
                result.reason = reason
                result.cached = position > 0  # coalesced onto the first ask

    def _result(
        self,
        job: Job,
        artifacts: SchemaArtifacts | None,
        decision: CachedDecision,
        route: str,
        cached: bool = False,
        elapsed_ms: float = 0.0,
    ) -> JobResult:
        return JobResult(
            id=job.id if job.id is not None else job.query_text,
            query=job.query_text,
            schema=job.schema,
            fingerprint=artifacts.fingerprint if artifacts else None,
            satisfiable=decision.satisfiable,
            method=decision.method,
            reason=decision.reason,
            route=route,
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    def _error_result(self, raw, error: ReproError) -> JobResult:
        query_text = schema = job_id = None
        try:
            job = Job.coerce(raw)
            query_text, schema, job_id = job.query_text, job.schema, job.id
        except ReproError:
            query_text = repr(raw)
        return JobResult(
            id=job_id if job_id is not None else (query_text or ""),
            query=query_text or "",
            schema=schema,
            fingerprint=None,
            satisfiable=None,
            method="error",
            route="error",
            error=str(error),
        )
