"""The batch satisfiability engine.

:class:`BatchEngine` layers three amortizations over
:func:`repro.sat.dispatch.decide` for the serve-many-queries-per-schema
workload:

1. **per-schema artifacts** — DTD parsing, classification, and graph
   construction run once per schema in the :class:`SchemaRegistry` and are
   passed to the dispatcher through its ``artifacts`` hook;
2. **plan caching** — routing goes through the query planner
   (:mod:`repro.sat.planner`); the resulting
   :class:`~repro.sat.planner.Plan` is cached per feature signature on the
   schema's artifact record, so a warm run resolves routing with zero
   planner invocations and jobs group by plan;
3. **decision caching** — a bounded LRU keyed on canonical query form ×
   schema fingerprint (:class:`DecisionCache`), so repeated questions
   (including syntactic variants) skip ``decide()`` entirely;
4. **parallel heavy jobs** — jobs whose plan routes to the heavy
   EXPTIME/NEXPTIME/bounded procedures (``plan.route == "pool"``) run on a
   ``concurrent.futures`` process pool, while PTIME plans are decided
   inline (forking a worker would cost more than the decision);
5. **plan-grouped scheduling** — pooled jobs are partitioned by
   ``Plan.telemetry_key`` × schema fingerprint into :class:`PlanGroup`
   chunks and each chunk is dispatched as **one** worker task: the chunk
   pickles the DTD and plan once instead of per job, and the decider
   chain's ``prepare`` hooks (:class:`repro.sat.planner.PlanContexts`)
   run once per chunk, so N groupmates share per-plan setup (the types
   fixpoint's automata, the bounded engine's schema classification and
   word tables) that ungrouped dispatch rebuilds N times.  Disable with
   ``group_by_plan=False`` (``--no-group-by-plan``); grouping is a pure
   scheduling change — verdicts, cache contents, and telemetry verdict
   mixes are identical either way (see ``tests/test_metamorphic.py``);
6. **persistent worker runtimes with schema affinity** — every chunk
   runs on the :class:`~repro.engine.executors.Executor` abstraction:
   inline chunks on an engine-lifetime
   :class:`~repro.engine.executors.InlineExecutor`, pooled ones on a
   :class:`~repro.engine.executors.PersistentPoolExecutor` of long-lived
   worker *lanes* whose :class:`~repro.engine.executors.WorkerRuntime`
   caches DTDs and prepared contexts by schema fingerprint **across
   chunks**.  Chunks route to lanes by schema-fingerprint affinity (a
   consistent hash, spilling over when the preferred lane's queue is
   deep), the DTD ships to a lane only on first touch, and a dead lane
   is respawned cold with its in-flight chunks retried once.  Disable
   with ``affinity=False`` (``--no-affinity``) for PR-4-style stateless
   pooling; affinity is a pure scheduling change too — same
   bit-identical guarantees as grouping;
7. **an engine lifecycle** — executors are *engine*-lifetime, not
   run-lifetime: worker lanes, their shipped-DTD sets, and their runtime
   context caches persist across :meth:`BatchEngine.run` calls, so the
   second batch over the same schemas ships zero DTDs and starts from
   warm contexts.  The engine is a context manager; ``close()`` releases
   the lanes, and a closed engine refuses further runs instead of
   hanging on torn-down queues.  This is what lets one engine back a
   long-lived service (:mod:`repro.engine.server`).

Identical in-flight questions are coalesced: within one batch, a question
is decided at most once no matter how many jobs ask it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable

if TYPE_CHECKING:  # statetier imports state which is import-light, but
    # the engine only needs the type for annotations
    from repro.engine.statetier import StateTier

from repro.errors import EngineError, ReproError
from repro.engine.cache import CachedDecision, CacheKey, DecisionCache, decision_key_for
from repro.engine.executors import (
    DEFAULT_LANE_QUEUE_DEPTH,
    ChunkOutcome,
    ChunkTask,
    Executor,
    InlineExecutor,
    PersistentPoolExecutor,
)
from repro.engine.registry import SchemaArtifacts, SchemaRegistry
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import FAILED, JobTrace, Span, Tracer, attempt_spans
from repro.sat.bounded import Bounds
from repro.sat.costmodel import CostModel, size_bucket
from repro.sat.planner import (
    ExecutionTrace,
    Plan,
    Planner,
    execute_plan,
)
from repro.sat.registry import decider_backend, decider_traits, get_decider
from repro.sat.telemetry import LATENCY_BUCKETS_MS, PlanTelemetry, verdict_name
from repro.xpath.rewrite import get_pass
from repro.xpath.ast import Path
from repro.xpath.canonical import canonicalize
from repro.xpath.fragments import features_of
from repro.xpath.parser import parse_query

_LOG = get_logger("repro.engine.batch")


@dataclass(frozen=True)
class Job:
    """One satisfiability question: a query against a registered schema
    (``schema=None`` decides over unconstrained trees)."""

    query: str | Path
    schema: str | None = None
    id: str | None = None

    @classmethod
    def coerce(cls, raw: "Job | dict | tuple | str") -> "Job":
        if isinstance(raw, cls):
            job = raw
        elif isinstance(raw, str):
            job = cls(query=raw)
        elif isinstance(raw, tuple):
            if not 1 <= len(raw) <= 3:
                raise EngineError(f"job tuple must be (query[, schema[, id]]): {raw!r}")
            job = cls(*raw)
        elif isinstance(raw, dict):
            if "query" not in raw:
                raise EngineError(f"job record missing 'query': {raw!r}")
            job = cls(query=raw["query"], schema=raw.get("schema"), id=raw.get("id"))
        else:
            raise EngineError(f"cannot interpret job {raw!r}")
        if not isinstance(job.query, (str, Path)):
            raise EngineError(
                f"job query must be an XPath string or AST, got {job.query!r}"
            )
        if job.schema is not None and not isinstance(job.schema, str):
            raise EngineError(f"job schema must be a string, got {job.schema!r}")
        return job

    @property
    def query_text(self) -> str:
        return self.query if isinstance(self.query, str) else str(self.query)


@dataclass
class JobResult:
    """Structured outcome of one job."""

    id: str
    query: str
    schema: str | None
    fingerprint: str | None
    satisfiable: bool | None
    method: str
    reason: str = ""
    route: str = "inline"          # cache | inline | pool | error
    cached: bool = False
    elapsed_ms: float = 0.0
    error: str | None = None

    def to_record(self) -> dict[str, Any]:
        record = {
            "id": self.id,
            "query": self.query,
            "schema": self.schema,
            "fingerprint": self.fingerprint,
            "satisfiable": self.satisfiable,
            "method": self.method,
            "route": self.route,
            "cached": self.cached,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.reason:
            record["reason"] = self.reason
        if self.error is not None:
            record["error"] = self.error
        return record


@dataclass
class EngineStats:
    """Aggregate counters for one :meth:`BatchEngine.run`."""

    jobs: int = 0
    errors: int = 0
    decide_calls: int = 0
    inline_decides: int = 0
    pool_decides: int = 0
    cache_hits: int = 0
    coalesced: int = 0
    planner_invocations: int = 0   # plans built during this run
    plan_cache_hits: int = 0       # routing resolved from a plan cache
    # plan-grouped scheduling (this run): chunks dispatched, unique jobs
    # executed inside a chunk, jobs that reused a groupmate's prepare()
    # context, and chunks whose *primary* prepare() failed (they fell
    # back to ungrouped per-job execution but still ran as one task)
    plan_groups: int = 0
    grouped_jobs: int = 0
    setup_reuse: int = 0
    prepare_fallbacks: int = 0
    group_sizes: list[int] = field(default_factory=list)
    # executor layer (this run): lanes in the pool (0 = no pool was
    # needed), whether schema-affinity scheduling was on, DTDs actually
    # pickled to a lane (first touch; stateless mode ships per chunk),
    # chunks that found their prepare() contexts warm in a persistent
    # worker runtime, chunks that spilled off their preferred lane,
    # lanes respawned after a worker death, and in-flight chunks retried
    # on a respawned lane.  A retried chunk reports its group counters
    # exactly once — grouped_jobs/setup_reuse never double-count a
    # retry (see tests/test_engine.py::TestWorkerDeathRecovery).
    lanes: int = 0
    affinity: bool = True
    dtd_ships: int = 0
    runtime_context_hits: int = 0
    affinity_spills: int = 0
    lane_respawns: int = 0
    chunk_retries: int = 0
    # warm executors discarded this run because a tunable flipped (e.g.
    # `affinity` changed between runs): each reset throws away a
    # runtime's cached DTDs and contexts, so a nonzero value explains a
    # cold-looking run on a long-lived engine
    executor_resets: int = 0
    # lane health (this run): per-chunk enqueue→absorb dwell (queue +
    # IPC time, executor execution excluded), and per-lane gauges — the
    # runtime context-cache occupancy and lifetime evictions reported by
    # each lane's newest chunk, plus the deepest in-flight queue the
    # lane reached
    chunk_dwell_ms: list[float] = field(default_factory=list)
    lane_contexts: dict[int, int] = field(default_factory=dict)
    lane_evictions: dict[int, int] = field(default_factory=dict)
    lane_peak_depth: dict[int, int] = field(default_factory=dict)
    # cost-model epsilon-exploration probes run this pass (timing a
    # fallback chain member the normal path would never measure)
    explore_probes: int = 0
    # answered decisions by the answering decider's kernel backend
    # ("object" vs "bitset") — where a cost-model promotion of the
    # packed kernels becomes visible at the engine level
    backend_answers: dict[str, int] = field(default_factory=dict)
    # answered decisions whose answering decider is schema-trait gated,
    # keyed by decider name — the engine-level view of how much traffic
    # the real-world PTIME fast paths absorb instead of the EXPTIME lanes
    trait_routed_answers: dict[str, int] = field(default_factory=dict)
    # engine-lifetime totals, not per-run deltas: persisted state is
    # adopted at engine construction / schema registration, before any
    # run starts, so a per-run delta would always read 0
    persisted_plans_loaded: int = 0
    persisted_decisions_loaded: int = 0
    workers: int = 1
    elapsed_s: float = 0.0
    cache: dict[str, Any] = field(default_factory=dict)
    registry: dict[str, Any] = field(default_factory=dict)
    # per-plan telemetry summary — like the persisted_* fields this is an
    # engine-lifetime snapshot (telemetry accumulates across runs and
    # merges persisted state), not a per-run delta: counts reconcile with
    # the sum of decide_calls over the engine's whole history
    plans: dict[str, Any] = field(default_factory=dict)

    def jobs_per_group(self, q: float) -> int:
        """The ``q``-quantile of jobs per dispatched group chunk (0 when
        nothing was grouped this run)."""
        if not self.group_sizes:
            return 0
        ordered = sorted(self.group_sizes)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[index]

    def dwell_percentile(self, q: float) -> float:
        """The ``q``-quantile of chunk enqueue→absorb dwell in ms (0.0
        when no chunk was dispatched this run)."""
        if not self.chunk_dwell_ms:
            return 0.0
        ordered = sorted(self.chunk_dwell_ms)
        index = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
        return ordered[index]

    def lane_health(self) -> dict[int, dict[str, int]]:
        """Per-lane health gauges folded from chunk outcomes: runtime
        context-cache occupancy, lifetime evictions, and queue-depth
        peak."""
        lane_ids = (
            set(self.lane_contexts) | set(self.lane_evictions)
            | set(self.lane_peak_depth)
        )
        return {
            lane: {
                "contexts": self.lane_contexts.get(lane, 0),
                "evictions": self.lane_evictions.get(lane, 0),
                "peak_depth": self.lane_peak_depth.get(lane, 0),
            }
            for lane in sorted(lane_ids)
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "errors": self.errors,
            "decide_calls": self.decide_calls,
            "inline_decides": self.inline_decides,
            "pool_decides": self.pool_decides,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "planner_invocations": self.planner_invocations,
            "plan_cache_hits": self.plan_cache_hits,
            "plan_groups": self.plan_groups,
            "grouped_jobs": self.grouped_jobs,
            "setup_reuse": self.setup_reuse,
            "prepare_fallbacks": self.prepare_fallbacks,
            "jobs_per_group_p50": self.jobs_per_group(0.5),
            "jobs_per_group_p90": self.jobs_per_group(0.9),
            "lanes": self.lanes,
            "affinity": self.affinity,
            "dtd_ships": self.dtd_ships,
            "runtime_context_hits": self.runtime_context_hits,
            "affinity_spills": self.affinity_spills,
            "lane_respawns": self.lane_respawns,
            "chunk_retries": self.chunk_retries,
            "executor_resets": self.executor_resets,
            "chunk_dwell_p50_ms": round(self.dwell_percentile(0.5), 4),
            "chunk_dwell_p90_ms": round(self.dwell_percentile(0.9), 4),
            "lane_health": {
                str(lane): health for lane, health in self.lane_health().items()
            },
            "explore_probes": self.explore_probes,
            "backend_answers": dict(self.backend_answers),
            "trait_routed_answers": dict(self.trait_routed_answers),
            "persisted_plans_loaded": self.persisted_plans_loaded,
            "persisted_decisions_loaded": self.persisted_decisions_loaded,
            "workers": self.workers,
            "elapsed_s": round(self.elapsed_s, 4),
            "cache": dict(self.cache),
            "registry": dict(self.registry),
            "plans": dict(self.plans),
        }

    def describe(self) -> str:
        lines = [
            f"jobs          : {self.jobs} ({self.errors} errors)",
            f"decide() calls: {self.decide_calls} "
            f"({self.inline_decides} inline, {self.pool_decides} pooled, "
            f"{self.workers} workers)",
            f"planner       : {self.planner_invocations} plans built, "
            f"{self.plan_cache_hits} plan-cache hits, "
            f"{self.persisted_plans_loaded} persisted plans loaded, "
            f"{self.explore_probes} explore probes",
            f"plan groups   : {self.plan_groups} dispatched, "
            f"{self.grouped_jobs} jobs grouped, {self.setup_reuse} setup reuses, "
            f"{self.prepare_fallbacks} prepare fallbacks "
            f"(p50 {self.jobs_per_group(0.5)}, p90 {self.jobs_per_group(0.9)} "
            f"jobs/group)",
            f"executor      : {self.lanes} lanes "
            f"(affinity {'on' if self.affinity else 'off'}), "
            f"{self.dtd_ships} DTD ships, "
            f"{self.runtime_context_hits} runtime-context hits, "
            f"{self.affinity_spills} spills, {self.lane_respawns} respawns, "
            f"{self.chunk_retries} chunk retries, "
            f"{self.executor_resets} executor resets",
            f"backends      : " + (
                ", ".join(
                    f"{backend} {count}"
                    for backend, count in sorted(self.backend_answers.items())
                ) or "no answered decisions"
            ),
            f"trait routing : " + (
                ", ".join(
                    f"{decider} {count}"
                    for decider, count in sorted(self.trait_routed_answers.items())
                ) or "no trait-gated answers"
            ),
            f"cache         : {self.cache_hits} hits, {self.coalesced} coalesced, "
            f"{self.cache.get('size', 0)}/{self.cache.get('capacity', 0)} entries, "
            f"{self.cache.get('evictions', 0)} evictions "
            f"(lifetime hit rate {self.cache.get('hit_rate', 0.0):.1%})",
            f"schemas       : {self.registry.get('schemas', 0)} registered, "
            f"{self.registry.get('builds', 0)} artifact builds, "
            f"{self.registry.get('dedup_hits', 0)} dedup hits",
            f"wall time     : {self.elapsed_s:.3f}s",
        ]
        if self.chunk_dwell_ms:
            lines.insert(
                -1,
                f"lane dwell    : p50 {self.dwell_percentile(0.5):.2f}ms, "
                f"p90 {self.dwell_percentile(0.9):.2f}ms over "
                f"{len(self.chunk_dwell_ms)} chunks",
            )
        return "\n".join(lines)

    def register_metrics(self, registry: "MetricsRegistry") -> None:
        """Register this run's counters, lane-health gauges, and the
        chunk-dwell histogram into a unified metrics registry."""
        for name, help_text in (
            ("jobs", "jobs submitted"),
            ("errors", "jobs that errored"),
            ("decide_calls", "decision procedure invocations"),
            ("inline_decides", "decisions executed in-process"),
            ("pool_decides", "decisions executed on worker lanes"),
            ("cache_hits", "jobs answered from the decision cache"),
            ("coalesced", "duplicate in-flight questions coalesced"),
            ("planner_invocations", "plans built"),
            ("plan_cache_hits", "routings resolved from a plan cache"),
            ("plan_groups", "plan-group chunks dispatched"),
            ("grouped_jobs", "jobs executed inside a group chunk"),
            ("setup_reuse", "jobs that reused a groupmate's prepare()"),
            ("prepare_fallbacks", "chunks degraded to per-job setup"),
            ("dtd_ships", "DTDs pickled to a lane"),
            ("runtime_context_hits", "chunks served from a warm runtime"),
            ("affinity_spills", "chunks spilled off their preferred lane"),
            ("lane_respawns", "worker lanes respawned after death"),
            ("chunk_retries", "in-flight chunks retried after lane death"),
            ("executor_resets", "warm executors discarded after a tunable flip"),
            ("explore_probes", "cost-model exploration probes"),
        ):
            registry.counter(f"repro_{name}_total", help_text).inc(
                getattr(self, name)
            )
        for backend, count in sorted(self.backend_answers.items()):
            registry.counter(
                "repro_backend_answers_total",
                "answered decisions by the answering decider's kernel backend",
                {"backend": backend},
            ).inc(count)
        for decider, count in sorted(self.trait_routed_answers.items()):
            registry.counter(
                "repro_trait_routed_answers_total",
                "answered decisions by schema-trait-gated deciders",
                {"decider": decider},
            ).inc(count)
        registry.gauge("repro_workers", "configured worker count").set(self.workers)
        registry.gauge("repro_lanes", "lanes in the pool this run").set(self.lanes)
        registry.gauge(
            "repro_affinity_enabled", "schema-affinity scheduling on"
        ).set(1 if self.affinity else 0)
        registry.gauge(
            "repro_decision_cache_size", "decision-cache entries"
        ).set(self.cache.get("size", 0))
        registry.gauge(
            "repro_decision_cache_evictions", "decision-cache lifetime evictions"
        ).set(self.cache.get("evictions", 0))
        registry.gauge(
            "repro_schemas_registered", "schemas in the registry"
        ).set(self.registry.get("schemas", 0))
        dwell = registry.histogram(
            "repro_chunk_dwell_ms", LATENCY_BUCKETS_MS,
            "chunk enqueue-to-absorb dwell (ms)",
        )
        for dwell_ms in self.chunk_dwell_ms:
            dwell.observe(dwell_ms)
        for lane, health in self.lane_health().items():
            labels = {"lane": str(lane)}
            registry.gauge(
                "repro_lane_context_cache_size",
                "prepared contexts held by the lane runtime", labels,
            ).set(health["contexts"])
            registry.counter(
                "repro_lane_context_evictions_total",
                "contexts evicted by the lane runtime (lifetime)", labels,
            ).inc(health["evictions"])
            registry.gauge(
                "repro_lane_queue_depth_peak",
                "deepest in-flight queue the lane reached", labels,
            ).set(health["peak_depth"])


@dataclass
class BatchReport:
    """Results plus engine statistics for one batch run."""

    results: list[JobResult]
    stats: EngineStats

    def verdict_counts(self) -> dict[str, int]:
        counts = {"sat": 0, "unsat": 0, "unknown": 0, "error": 0}
        for result in self.results:
            if result.error is not None:
                counts["error"] += 1
            elif result.satisfiable is True:
                counts["sat"] += 1
            elif result.satisfiable is False:
                counts["unsat"] += 1
            else:
                counts["unknown"] += 1
        return counts


def plan_route(query: Path, artifacts: SchemaArtifacts | None) -> str:
    """``"inline"`` for queries whose plan is PTIME, ``"pool"`` for those
    routed to the heavy EXPTIME/NEXPTIME/bounded procedures.

    Thin wrapper over the query planner (kept for callers that only care
    about the inline/pool split); the :class:`BatchEngine` itself consults
    the full :class:`~repro.sat.planner.Plan` from the schema's plan
    cache.
    """
    return _ROUTE_PLANNER.plan_query(query, artifacts=artifacts).route


#: module-level planner backing the plan_route convenience wrapper; plans
#: for registered schemas still land in the shared per-artifact caches
_ROUTE_PLANNER = Planner()


@dataclass
class _GroupEntry:
    """One unique question queued in a plan group: its decision-cache
    key, pre-canonicalized query, and every job index awaiting it (the
    first asked; the rest coalesced onto it)."""

    key: CacheKey
    canonical: Path
    indices: list[int]


@dataclass
class PlanGroup:
    """Pooled jobs sharing one routing decision (``Plan.telemetry_key``)
    against one schema — the scheduler's unit of shared per-plan setup.

    ``dispatched`` marks how many leading entries were already submitted
    as full chunks during the job scan (keeping the pool busy while the
    scan continues); only the tail past it awaits post-scan dispatch.
    """

    plan: Plan
    artifacts: SchemaArtifacts | None
    entries: list[_GroupEntry] = field(default_factory=list)
    dispatched: int = 0


#: scheduler tunable defaults (overridden by constructor arguments, then
#: by a state dir's persisted ``scheduler.json``, in that order)
DEFAULT_GROUP_CHUNK_SIZE = 16
DEFAULT_DECISION_CAP_PER_SCHEMA = 512
DEFAULT_TELEMETRY_MAX_AGE_DAYS = 30.0
DEFAULT_AFFINITY = True


class BatchEngine:
    """Execute batches of ``(query, schema_ref)`` jobs with schema-artifact
    reuse, plan-cached routing, decision caching, and a plan-grouped
    process pool of persistent, schema-affine worker lanes for heavy
    fragments.

    The engine is a long-lived object with an explicit lifecycle: both
    executors (inline and pool) live as long as the engine, so lanes and
    their runtime caches stay warm across :meth:`run` calls.  Use it as
    a context manager, or call :meth:`close` when done — a closed engine
    raises :class:`~repro.errors.EngineError` on further use."""

    #: pool-executor constructor (``factory(workers, affinity=...,
    #: lane_queue_depth=...) -> Executor``); a seam for tests that
    #: simulate lane crashes without burning real fork time
    _executor_factory = PersistentPoolExecutor

    def __init__(
        self,
        registry: SchemaRegistry | None = None,
        cache: DecisionCache | None = None,
        workers: int = 1,
        bounds: Bounds | None = None,
        planner: Planner | None = None,
        cost_model: CostModel | None = None,
        telemetry: PlanTelemetry | None = None,
        state_dir: str | None = None,
        state_tier: "StateTier | str | None" = None,
        group_by_plan: bool | None = None,
        group_chunk_size: int | None = None,
        decision_cap_per_schema: int | None = None,
        telemetry_max_age_days: float | None = None,
        affinity: bool | None = None,
        lane_queue_depth: int | None = None,
        tracer: Tracer | None = None,
    ):
        if workers < 1:
            raise EngineError(f"workers must be positive, got {workers}")
        if group_chunk_size is not None and group_chunk_size < 1:
            raise EngineError(
                f"group_chunk_size must be positive, got {group_chunk_size}"
            )
        if lane_queue_depth is not None and lane_queue_depth < 1:
            raise EngineError(
                f"lane_queue_depth must be positive, got {lane_queue_depth}"
            )
        if decision_cap_per_schema is not None and decision_cap_per_schema < 1:
            raise EngineError(
                f"decision_cap_per_schema must be positive, "
                f"got {decision_cap_per_schema}"
            )
        if telemetry_max_age_days is not None and telemetry_max_age_days <= 0:
            raise EngineError(
                f"telemetry_max_age_days must be positive, "
                f"got {telemetry_max_age_days}"
            )
        # scheduler tunables: explicit constructor arguments always win;
        # ones left None take the state dir's persisted values (if any),
        # then the defaults
        self._explicit_tunables = {
            name
            for name, value in (
                ("group_by_plan", group_by_plan),
                ("group_chunk_size", group_chunk_size),
                ("decision_cap_per_schema", decision_cap_per_schema),
                ("telemetry_max_age_days", telemetry_max_age_days),
                ("affinity", affinity),
                ("lane_queue_depth", lane_queue_depth),
            )
            if value is not None
        }
        self.group_by_plan = group_by_plan if group_by_plan is not None else True
        self.group_chunk_size = (
            group_chunk_size if group_chunk_size is not None
            else DEFAULT_GROUP_CHUNK_SIZE
        )
        self.affinity = affinity if affinity is not None else DEFAULT_AFFINITY
        self.lane_queue_depth = (
            lane_queue_depth if lane_queue_depth is not None
            else DEFAULT_LANE_QUEUE_DEPTH
        )
        self.decision_cap_per_schema = (
            decision_cap_per_schema if decision_cap_per_schema is not None
            else DEFAULT_DECISION_CAP_PER_SCHEMA
        )
        self.telemetry_max_age_days = (
            telemetry_max_age_days if telemetry_max_age_days is not None
            else DEFAULT_TELEMETRY_MAX_AGE_DAYS
        )
        self.registry = registry if registry is not None else SchemaRegistry()
        self.cache = cache if cache is not None else DecisionCache()
        if planner is not None:
            # a caller-supplied planner is never mutated: if it carries a
            # cost model the engine feeds that one, otherwise the engine
            # still measures (into its own model) but the planner keeps
            # planning statically — attaching our model behind the
            # caller's back would change routing process-wide (e.g. for
            # DEFAULT_PLANNER)
            if (
                cost_model is not None
                and planner.cost_model is not None
                and planner.cost_model is not cost_model
            ):
                raise EngineError(
                    "planner already carries a different cost model; pass "
                    "one of cost_model= or planner=, not conflicting both"
                )
            self.planner = planner
            self.cost_model = (
                planner.cost_model if planner.cost_model is not None
                else (cost_model if cost_model is not None else CostModel())
            )
        else:
            self.cost_model = cost_model if cost_model is not None else CostModel()
            self.planner = Planner(cost_model=self.cost_model)
        self.telemetry = telemetry if telemetry is not None else PlanTelemetry()
        self.workers = workers
        self.bounds = bounds
        self.persisted_decisions_loaded = 0
        self.state_warnings: list[str] = []
        if state_dir is not None and state_tier is not None:
            raise EngineError(
                "pass one of state_dir= (JSON snapshot) or state_tier= "
                "(shared SQLite), not both"
            )
        self.state_dir = state_dir
        # the shared SQLite tier: constructed from a path (owned, closed
        # with the engine) or caller-supplied (shared, left open)
        self._owns_tier = isinstance(state_tier, str)
        if isinstance(state_tier, str):
            from repro.engine.statetier import StateTier

            state_tier = StateTier(state_tier)
        self.state_tier = state_tier
        # observability: tracer is None by default and every tracing
        # branch is guarded on it, so the default-off path costs a
        # handful of predictable `is not None` checks per job
        self.tracer = tracer
        self.last_stats: EngineStats | None = None
        # extra stat sources folded into metrics_registry() (e.g. the
        # serving front-end registers its connection/inflight gauges
        # here so they land in the state dir's metrics.prom)
        self.metrics_sources: list[Any] = []
        # both executors are engine-lifetime (created lazily): the inline
        # WorkerRuntime and the pool's lanes keep DTDs and prepared
        # contexts warm across run() calls.  _pool_config remembers the
        # tunables the pool was built with so a flip discards it cleanly
        # (counted in executor_resets) instead of silently serving the
        # new settings from a stale executor.
        self._inline_executor: InlineExecutor | None = None
        self._pool_executor: Executor | None = None
        self._pool_config: tuple[bool, int] | None = None
        self.executor_resets = 0
        self._closed = False
        self._next_task_id = 0
        if state_dir is not None:
            self.load_state(state_dir)
        elif self.state_tier is not None:
            self.metrics_sources.append(self.state_tier)
            self.load_tier_state()

    # -- state persistence --------------------------------------------------
    def _adopt_state(self, state) -> int:
        """Fold a :class:`~repro.engine.state.PersistedState` (from a
        JSON dir or the shared tier) into this engine: plan caches
        (applied now for registered schemas, at registration for later
        ones), telemetry, cost-model measurements, cached decisions, and
        scheduler tunables (which fill every tunable the constructor left
        unset).  Returns the number of plans available from persistence."""
        self.state_warnings.extend(state.warnings)
        self.registry.adopt_plans(state.plans, names=state.plan_names)
        if state.telemetry is not None:
            self.telemetry.merge(state.telemetry)
        if state.cost_model is not None:
            self.cost_model.merge(state.cost_model)
        if state.decisions:
            self.persisted_decisions_loaded += self.cache.load_records(state.decisions)
        for name in (
            "group_by_plan", "group_chunk_size",
            "decision_cap_per_schema", "telemetry_max_age_days",
            "affinity", "lane_queue_depth",
        ):
            if name in state.scheduler and name not in self._explicit_tunables:
                setattr(self, name, state.scheduler[name])
        return state.plan_count

    def load_state(self, state_dir: str) -> int:
        """Warm this engine from a persisted JSON state directory (see
        :meth:`_adopt_state` for what is adopted)."""
        from repro.engine.state import load_state

        return self._adopt_state(load_state(state_dir))

    def load_tier_state(self) -> int:
        """Warm this engine from its shared state tier — the cache
        warming every process does before serving traffic.  After the
        merge the tier's cost baseline is re-anchored, so later saves
        contribute only samples observed by *this* process."""
        if self.state_tier is None:
            raise EngineError("engine has no state tier")
        plans = self._adopt_state(self.state_tier.load())
        self.state_tier.note_cost_baseline(self.cost_model)
        return plans

    @property
    def has_state(self) -> bool:
        """Whether :meth:`save_state` has somewhere to persist to."""
        return self.state_dir is not None or self.state_tier is not None

    @property
    def state_target(self) -> str | None:
        """Human-readable persistence target (dir or tier database)."""
        if self.state_dir is not None:
            return self.state_dir
        if self.state_tier is not None:
            return self.state_tier.path
        return None

    def save_state(self, state_dir: str | None = None) -> str:
        """Persist plan caches, telemetry, cost model, the decision cache,
        and the scheduler tunables — to the explicit ``state_dir``, the
        engine's JSON state dir, or its shared SQLite tier, in that
        order; returns the target written.  Hygiene applies on the way
        out: cached decisions are capped per schema and telemetry rows
        not seen within ``telemetry_max_age_days`` are aged out."""
        from repro.engine.state import save_state

        components = dict(
            registry=self.registry,
            telemetry=self.telemetry,
            cost_model=self.cost_model,
            cache=self.cache,
            scheduler={
                "group_by_plan": self.group_by_plan,
                "group_chunk_size": self.group_chunk_size,
                "decision_cap_per_schema": self.decision_cap_per_schema,
                "telemetry_max_age_days": self.telemetry_max_age_days,
                "affinity": self.affinity,
                "lane_queue_depth": self.lane_queue_depth,
            },
            decision_cap_per_schema=self.decision_cap_per_schema,
            telemetry_max_age_days=self.telemetry_max_age_days,
            engine_stats=(
                self.last_stats.as_dict() if self.last_stats is not None else None
            ),
            metrics_text=self.metrics_registry().render_prometheus(),
        )
        target = state_dir if state_dir is not None else self.state_dir
        if target is None and self.state_tier is not None:
            self.state_tier.save(**components)
            return self.state_tier.path
        if target is None:
            raise EngineError(
                "no persistence target (engine has neither a state dir "
                "nor a state tier)"
            )
        save_state(target, **components)
        return target

    def metrics_registry(self, stats: EngineStats | None = None) -> MetricsRegistry:
        """One unified metrics registry over every stat silo the engine
        holds: the given (or last run's) :class:`EngineStats`, the
        per-plan telemetry table, the cost model, and — when a tracer is
        attached — its trace counters.  Render with
        :meth:`~repro.obs.metrics.MetricsRegistry.render_prometheus` or
        :meth:`~repro.obs.metrics.MetricsRegistry.as_dict`."""
        registry = MetricsRegistry()
        stats = stats if stats is not None else self.last_stats
        if stats is not None:
            stats.register_metrics(registry)
        self.telemetry.register_metrics(registry)
        self.cost_model.register_metrics(registry)
        if self.tracer is not None:
            self.tracer.register_metrics(registry)
        for source in self.metrics_sources:
            source.register_metrics(registry)
        return registry

    def retune(self, decay: float | None = None) -> int:
        """Drop every cached plan — including persisted plans waiting for
        their schema's registration — so the next request replans against
        the cost model's current measurements (verdicts cannot change —
        only chain order and inline/pool routing).  With ``decay``, the
        cost model's cells are first scaled down by that factor
        (:meth:`~repro.sat.costmodel.CostModel.decay`), so stale
        measurements lose their grip on routing at the same moment.
        Returns the number of plans dropped."""
        if decay is not None:
            self.cost_model.decay(decay)
        return (
            self.planner.invalidate(*self.registry)
            + self.registry.discard_pending_plans()
        )

    # -- lifecycle ----------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the engine's executors — worker lanes, their runtimes,
        and the inline runtime.  State is *not* saved here (call
        :meth:`save_state` first if wanted).  Closing twice raises: a
        double close means two owners think they hold the engine's
        lifecycle, which is the bug worth surfacing."""
        if self._closed:
            raise EngineError("engine already closed")
        self._closed = True
        try:
            if self._pool_executor is not None:
                self._pool_executor.close()
        finally:
            self._pool_executor = None
            self._pool_config = None
            if self._inline_executor is not None:
                self._inline_executor.close()
                self._inline_executor = None
            if self._owns_tier and self.state_tier is not None:
                self.state_tier.close()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if not self._closed:
            self.close()
        return False

    # -- execution ----------------------------------------------------------
    def _inline(self) -> InlineExecutor:
        """The engine-lifetime single-worker executor.  Its runtime caches
        survive across :meth:`run` calls; it is rebuilt only when the
        affinity flag changed since it was built (e.g. a persisted
        tunable arriving after first use, or a caller flipping the
        attribute between runs) — the old executor is closed and the
        reset is counted, never silent."""
        if (
            self._inline_executor is not None
            and self._inline_executor.affinity != self.affinity
        ):
            _LOG.warning(
                "affinity flipped to %s since the inline executor was "
                "built; discarding its warm runtime", self.affinity,
            )
            self._inline_executor.close()
            self._inline_executor = None
            self.executor_resets += 1
        if self._inline_executor is None:
            self._inline_executor = InlineExecutor(affinity=self.affinity)
        return self._inline_executor

    def _pool(self) -> Executor:
        """The engine-lifetime pool executor: lanes (and their shipped-DTD
        sets and runtime caches) persist across :meth:`run` calls.  Like
        :meth:`_inline`, a tunable flip discards the warm pool with an
        accounted, logged reset."""
        config = (self.affinity, self.lane_queue_depth)
        if self._pool_executor is not None and self._pool_config != config:
            _LOG.warning(
                "scheduler tunables changed (affinity=%s, lane_queue_depth=%d)"
                " since the pool was built; discarding its warm lanes",
                *config,
            )
            self._discard_pool()
            self.executor_resets += 1
        if self._pool_executor is None:
            self._pool_executor = self._make_pool()
            self._pool_config = config
        return self._pool_executor

    def _discard_pool(self) -> None:
        if self._pool_executor is not None:
            try:
                self._pool_executor.close()
            finally:
                self._pool_executor = None
                self._pool_config = None

    def _make_pool(self) -> Executor:
        return self._executor_factory(
            self.workers,
            affinity=self.affinity,
            lane_queue_depth=self.lane_queue_depth,
        )

    def _take_task_id(self) -> int:
        self._next_task_id += 1
        return self._next_task_id

    def run(
        self,
        jobs: Iterable[Job | dict | tuple | str],
        on_result: Callable[[JobResult], None] | None = None,
    ) -> BatchReport:
        """Decide every job; returns per-job results (input order) and
        aggregate stats for this run.

        ``on_result`` (optional) is invoked exactly once per job, with
        the finalized :class:`JobResult`, the moment that job's verdict
        lands — cache hits and intake errors during the scan, inline
        decisions as they execute, pooled ones as their chunk is
        absorbed.  Callbacks arrive out of input order; the returned
        report still lists results in input order.  A serving front-end
        uses this to stream responses while the batch is in flight."""
        if self._closed:
            raise EngineError(
                "run() on a closed engine (close() was already called)"
            )
        start = time.perf_counter()
        stats = EngineStats(workers=self.workers, affinity=self.affinity)
        planner_invocations_before = self.planner.invocations
        plan_hits_before = self.planner.cache_hits
        resets_before = self.executor_resets
        tracer = self.tracer
        # job index -> its in-flight trace; spans for pooled jobs are
        # reassembled here at absorb time from lane-side outcomes
        traces: dict[int, JobTrace] = {}
        results: list[JobResult | None] = []
        # ungrouped pooled coalescing: key -> the task's bookkeeping
        # record (its index list grows as duplicates coalesce)
        pending: dict[CacheKey, tuple] = {}
        # plan-grouped scheduling: (schema fingerprint, telemetry key) ->
        # group of queued pooled jobs, plus the key -> entry map that
        # coalesces duplicates queued into a group
        groups: dict[tuple[str | None, str], PlanGroup] = {}
        grouped_keys: dict[CacheKey, _GroupEntry] = {}
        # every chunk handed to an executor, by task id (last element is
        # always the enqueue timestamp, for dwell measurement):
        # ("chunk", group, entries, enqueued) |
        # ("single", key, indices, plan, artifacts, canonical, enqueued)
        submitted: dict[int, tuple] = {}
        # the engine-lifetime pool, acquired lazily so a run with no
        # pooled work never forks lanes; lane_respawns is reported as a
        # per-run delta against the executor's lifetime counter
        pool: Executor | None = None
        pool_respawns_before = 0

        def emit(index: int) -> None:
            """Stream one finalized result to the caller; every result
            index passes here exactly once (pooled ones via the
            exactly-once absorb pop)."""
            if on_result is not None:
                on_result(results[index])

        def acquire_pool() -> Executor:
            nonlocal pool, pool_respawns_before
            if pool is None:
                pool = self._pool()
                pool_respawns_before = pool.stats().lane_respawns
            return pool

        def submit_chunk(executor: Executor, group: PlanGroup,
                         chunk: list[_GroupEntry]) -> None:
            task_id = self._take_task_id()
            submitted[task_id] = ("chunk", group, chunk, time.perf_counter())
            executor.submit(
                ChunkTask(
                    task_id=task_id,
                    fingerprint=(
                        group.artifacts.fingerprint if group.artifacts else None
                    ),
                    canonicals=tuple(entry.canonical for entry in chunk),
                    plan=group.plan,
                    bounds=self.bounds,
                ),
                group.artifacts.dtd if group.artifacts else None,
            )

        try:
            for index, raw in enumerate(jobs):
                results.append(None)
                stats.jobs += 1
                try:
                    job = Job.coerce(raw)
                    query = (
                        parse_query(job.query)
                        if isinstance(job.query, str)
                        else job.query
                    )
                    artifacts = (
                        self.registry.get(job.schema)
                        if job.schema is not None
                        else None
                    )
                except ReproError as error:
                    stats.errors += 1
                    results[index] = self._error_result(raw, error)
                    if tracer is not None:
                        failed = results[index]
                        trace = tracer.begin(
                            job_id=failed.id, query=failed.query,
                            schema=failed.schema,
                        )
                        trace.span(
                            "intake", status=FAILED,
                            attrs={"error": str(error)},
                        )
                        tracer.finish(trace, verdict="error", route="error")
                    emit(index)
                    continue

                trace = None
                if tracer is not None:
                    trace = tracer.begin(
                        job_id=job.id if job.id is not None else job.query_text,
                        query=job.query_text,
                        schema=job.schema,
                        fingerprint=artifacts.fingerprint if artifacts else None,
                    )
                    traces[index] = trace
                    step_start = time.perf_counter()
                # one canonicalization per job, shared by the cache key and
                # the decision (execute_plan skips its canonicalize pass)
                canonical = canonicalize(query)
                if trace is not None:
                    trace.span(
                        "canonicalize",
                        ms=(time.perf_counter() - step_start) * 1e3,
                    )
                key = decision_key_for(
                    canonical, artifacts.fingerprint if artifacts else None, self.bounds
                )
                cached = self.cache.get(key)
                if cached is not None:
                    stats.cache_hits += 1
                    results[index] = self._result(
                        job, artifacts, cached, route="cache", cached=True
                    )
                    if trace is not None:
                        trace.span("cache", attrs={"hit": True})
                        tracer.finish(
                            trace, verdict=verdict_name(cached.satisfiable),
                            route="cache",
                        )
                    emit(index)
                    continue
                if key in grouped_keys:
                    stats.coalesced += 1
                    grouped_keys[key].indices.append(index)
                    results[index] = self._result(
                        job, artifacts,
                        CachedDecision(None, "pending"), route="pool",
                    )
                    # the trace finishes at absorb time, alongside its
                    # leader, with a span naming the leader's trace
                    continue
                if key in pending:
                    stats.coalesced += 1
                    pending[key][2].append(index)
                    results[index] = self._result(
                        job, artifacts,
                        CachedDecision(None, "pending"), route="pool",
                    )
                    continue

                if trace is not None:
                    plan_hits_step = self.planner.cache_hits
                    step_start = time.perf_counter()
                plan = self.planner.plan_for(features_of(query), artifacts=artifacts)
                if trace is not None:
                    trace.span(
                        "plan",
                        ms=(time.perf_counter() - step_start) * 1e3,
                        attrs={
                            "signature": plan.signature,
                            "decider": plan.decider,
                            "cache_hit": self.planner.cache_hits > plan_hits_step,
                        },
                    )
                    trace.span(
                        "route",
                        attrs={
                            "route": plan.route,
                            "grouped": plan.route == "pool" and self.group_by_plan,
                            "workers": self.workers,
                        },
                    )
                if plan.route == "pool" and self.group_by_plan:
                    # queue for plan-grouped dispatch after the scan; the
                    # group pays worker setup (prepare hooks, DTD pickle)
                    # once for all its jobs
                    group_key = (
                        artifacts.fingerprint if artifacts else None,
                        plan.telemetry_key,
                    )
                    group = groups.get(group_key)
                    if group is None:
                        group = groups[group_key] = PlanGroup(
                            plan=plan, artifacts=artifacts
                        )
                    entry = _GroupEntry(key=key, canonical=canonical, indices=[index])
                    group.entries.append(entry)
                    grouped_keys[key] = entry
                    results[index] = self._result(
                        job, artifacts, CachedDecision(None, "pending"),
                        route="pool",
                    )
                    # a full chunk goes to the pool immediately so lanes
                    # overlap with the rest of the scan (later duplicates
                    # still coalesce: the entries stay live until drain)
                    if (
                        self.workers > 1
                        and len(group.entries) - group.dispatched
                        >= self.group_chunk_size
                    ):
                        pool = acquire_pool()
                        chunk = group.entries[
                            group.dispatched:
                            group.dispatched + self.group_chunk_size
                        ]
                        group.dispatched += len(chunk)
                        submit_chunk(pool, group, chunk)
                    continue
                if plan.route == "pool" and self.workers > 1:
                    pool = acquire_pool()
                    task_id = self._take_task_id()
                    record = (
                        "single", key, [index], plan, artifacts, canonical,
                        time.perf_counter(),
                    )
                    submitted[task_id] = record
                    pending[key] = record
                    pool.submit(
                        ChunkTask(
                            task_id=task_id,
                            fingerprint=(
                                artifacts.fingerprint if artifacts else None
                            ),
                            canonicals=(canonical,),
                            plan=plan,
                            bounds=self.bounds,
                            grouped=False,
                        ),
                        artifacts.dtd if artifacts else None,
                    )
                    results[index] = self._result(
                        job, artifacts, CachedDecision(None, "pending"),
                        route="pool",
                    )
                    continue

                job_start = time.perf_counter()
                exec_trace = ExecutionTrace()
                try:
                    outcome = execute_plan(
                        plan, canonical,
                        artifacts.dtd if artifacts else None, self.bounds,
                        pre_canonicalized=True, trace=exec_trace,
                    )
                    decision = CachedDecision(
                        outcome.satisfiable, outcome.method, outcome.reason
                    )
                except ReproError as error:
                    stats.errors += 1
                    stats.decide_calls += 1
                    stats.inline_decides += 1
                    self._observe(stats, plan, artifacts, exec_trace, "error")
                    results[index] = self._error_result(raw, error)
                    if trace is not None:
                        trace.span(
                            "execute",
                            ms=(time.perf_counter() - job_start) * 1e3,
                            status=FAILED,
                            attrs={"error": str(error)},
                            children=attempt_spans(exec_trace.attempts),
                        )
                        tracer.finish(
                            trace, verdict="error", route="error", plan=plan
                        )
                    emit(index)
                    continue
                stats.decide_calls += 1
                stats.inline_decides += 1
                elapsed_ms = (time.perf_counter() - job_start) * 1e3
                self._observe(
                    stats, plan, artifacts, exec_trace,
                    verdict_name(outcome.satisfiable),
                )
                self.cache.put(key, decision)
                results[index] = self._result(
                    job, artifacts, decision, route="inline",
                    elapsed_ms=elapsed_ms,
                )
                if trace is not None:
                    trace.span(
                        "execute", ms=elapsed_ms,
                        children=attempt_spans(exec_trace.attempts),
                    )
                    tracer.finish(
                        trace, verdict=verdict_name(outcome.satisfiable),
                        route="inline", plan=plan,
                    )
                emit(index)
                self._explore(stats, plan, canonical, artifacts, exec_trace)

            # group tails: one chunk per worker task on the pool, or on
            # the engine-lifetime inline executor when workers == 1 (its
            # persistent runtime reuses contexts across chunks either way)
            has_tails = any(
                len(group.entries) > group.dispatched
                for group in groups.values()
            )
            if has_tails:
                if self.workers > 1:
                    tail_executor: Executor = acquire_pool()
                else:
                    tail_executor = self._inline()
                for group in groups.values():
                    for chunk_start in range(
                        group.dispatched, len(group.entries),
                        self.group_chunk_size,
                    ):
                        submit_chunk(
                            tail_executor, group,
                            group.entries[
                                chunk_start:chunk_start + self.group_chunk_size
                            ],
                        )
            if pool is not None:
                self._absorb_all(
                    pool.drain(), submitted, results, stats, route="pool",
                    tracer=tracer, traces=traces, emit=emit,
                )
                pool_stats = pool.stats()
                stats.lanes = pool_stats.lanes
                # executor counters are lifetime; respawns this run is
                # the delta against the pool's count when we acquired it
                stats.lane_respawns = (
                    pool_stats.lane_respawns - pool_respawns_before
                )
                stats.lane_peak_depth = dict(pool_stats.lane_peak_depth)
            if self._inline_executor is not None:
                self._absorb_all(
                    self._inline_executor.drain(), submitted, results, stats,
                    route="inline",
                    tracer=tracer, traces=traces, emit=emit,
                )
            if tracer is not None:
                # safety net: a trace a bug (or an absorbed-but-lost
                # outcome) left open still emits exactly one record
                for trace in traces.values():
                    if not trace.finished:
                        tracer.finish(trace, verdict="unknown", route="lost")
        except BaseException:
            # an aborted run can leave chunks in flight on the lanes; a
            # later run would absorb them against this run's (now dead)
            # bookkeeping, so the warm pool is forfeited — it respawns
            # cold on the next pooled run
            if pool is not None:
                self._discard_pool()
            raise
        finally:
            if self._inline_executor is not None:
                # chunks queued for a run that aborted must not leak into
                # the next (a no-op on clean exits: drain emptied the queue)
                self._inline_executor.cancel_pending()

        stats.elapsed_s = time.perf_counter() - start
        stats.executor_resets = self.executor_resets - resets_before
        stats.planner_invocations = self.planner.invocations - planner_invocations_before
        stats.plan_cache_hits = self.planner.cache_hits - plan_hits_before
        stats.persisted_plans_loaded = self.registry.persisted_plans
        stats.persisted_decisions_loaded = self.persisted_decisions_loaded
        stats.cache = self.cache.stats()
        stats.registry = self.registry.stats()
        stats.plans = self.telemetry.summary()
        self.last_stats = stats
        return BatchReport(results=[r for r in results if r is not None], stats=stats)

    # -- helpers ------------------------------------------------------------
    def _absorb_all(
        self,
        outcomes: Iterable[tuple[ChunkTask, ChunkOutcome]],
        submitted: dict[int, tuple],
        results: list[JobResult | None],
        stats: EngineStats,
        route: str,
        tracer: Tracer | None = None,
        traces: dict[int, JobTrace] | None = None,
        emit: Callable[[int], None] | None = None,
    ) -> None:
        """Fold every drained ``(task, outcome)`` pair into results and
        counters.  Each task is absorbed **exactly once**: the bookkeeping
        record is popped on arrival, so a duplicate outcome (a retry
        racing its first attempt) can never double-report group counters
        — ``grouped_jobs``/``setup_reuse`` stay reconciled with the
        per-plan telemetry rows even across lane deaths.  The same pop
        makes lane-side span reassembly exactly-once: a job's trace is
        finished by the record's first (and only) absorption, and the
        ``emit`` streaming callback fires once per finalized job."""
        if emit is None:
            def emit(index: int) -> None:
                pass
        for task, outcome in outcomes:
            record = submitted.pop(task.task_id, None)
            if record is None:
                continue
            if outcome.dtd_shipped:
                stats.dtd_ships += 1
            if outcome.runtime_hit:
                stats.runtime_context_hits += 1
            if outcome.spilled:
                stats.affinity_spills += 1
            if outcome.retried:
                stats.chunk_retries += 1
            # enqueue→absorb dwell: queue + IPC time, execution excluded
            enqueued = record[-1]
            dwell_ms = max(
                0.0,
                (time.perf_counter() - enqueued) * 1e3 - outcome.elapsed_ms,
            )
            stats.chunk_dwell_ms.append(dwell_ms)
            if outcome.lane >= 0:
                stats.lane_contexts[outcome.lane] = outcome.runtime_contexts
                stats.lane_evictions[outcome.lane] = outcome.runtime_evictions
            if record[0] == "chunk":
                _, group, chunk, _ = record
                stats.decide_calls += len(chunk)
                if route == "pool":
                    stats.pool_decides += len(chunk)
                else:
                    stats.inline_decides += len(chunk)
                if outcome.error is not None:
                    # the whole chunk failed (its lane died and the one
                    # retry died too): per-job errors, nothing cached
                    jobs_hit = sum(len(entry.indices) for entry in chunk)
                    stats.errors += jobs_hit
                    self.telemetry.record_failure(group.plan, jobs_hit)
                    for entry in chunk:
                        for index in entry.indices:
                            result = results[index]
                            result.error = outcome.error
                            result.method = "error"
                            result.route = "error"
                            if tracer is not None and traces is not None:
                                trace = traces.get(index)
                                if trace is not None:
                                    trace.span(
                                        "chunk", status=FAILED,
                                        attrs=self._chunk_attrs(
                                            outcome, dwell_ms, len(chunk),
                                            error=outcome.error,
                                        ),
                                    )
                                    tracer.finish(
                                        trace, verdict="error",
                                        route="error", plan=group.plan,
                                    )
                            emit(index)
                    continue
                self._absorb_group(
                    group, chunk, outcome, results, stats, route=route,
                    tracer=tracer, traces=traces, dwell_ms=dwell_ms,
                    emit=emit,
                )
            else:
                _, key, indices, plan, artifacts, canonical, _ = record
                stats.decide_calls += 1
                if route == "pool":
                    stats.pool_decides += 1
                else:
                    stats.inline_decides += 1
                self._absorb_single(
                    key, indices, plan, artifacts, canonical, outcome,
                    results, stats,
                    tracer=tracer, traces=traces, dwell_ms=dwell_ms,
                    emit=emit,
                )

    @staticmethod
    def _chunk_attrs(
        outcome: ChunkOutcome,
        dwell_ms: float,
        group_size: int,
        error: str | None = None,
    ) -> dict[str, Any]:
        """Span attributes shared by every job a chunk decided: which
        lane ran it and how the executor layer treated it."""
        attrs: dict[str, Any] = {
            "lane": outcome.lane,
            "dwell_ms": round(dwell_ms, 3),
            "dtd_shipped": outcome.dtd_shipped,
            "runtime_hit": outcome.runtime_hit,
            "shared_setup": outcome.shared_setup,
            "spilled": outcome.spilled,
            "retried": outcome.retried,
            "group_size": group_size,
            "chunk_ms": round(outcome.elapsed_ms, 3),
        }
        if error is not None:
            attrs["error"] = error
        return attrs

    def _absorb_group(
        self,
        group: PlanGroup,
        chunk: list[_GroupEntry],
        outcome: ChunkOutcome,
        results: list[JobResult | None],
        stats: EngineStats,
        route: str,
        tracer: Tracer | None = None,
        traces: dict[int, JobTrace] | None = None,
        dwell_ms: float = 0.0,
        emit: Callable[[int], None] = lambda index: None,
    ) -> None:
        """Fold one chunk's outcomes into results, the decision cache,
        telemetry, and the cost model.  When tracing, each leader job's
        span tree is reassembled here from the lane-side outcome: a
        ``chunk`` span (lane, dwell, DTD-ship/runtime-hit flags) whose
        children are the shared ``prepare`` (first executed entry only)
        and the job's per-chain-member attempts; coalesced followers get
        a ``coalesced`` span naming their leader's trace."""
        plan, artifacts = group.plan, group.artifacts
        shared_setup = outcome.shared_setup
        stats.plan_groups += 1
        stats.group_sizes.append(len(chunk))
        # only a failed *primary* prepare means the chunk ran ungrouped;
        # a fallback hook failing mid-chunk leaves the shared setup intact
        if outcome.prepare_error is not None and not shared_setup:
            stats.prepare_fallbacks += 1
        executed = 0
        prepare_span_pending = True
        for entry, question_outcome in zip(chunk, outcome.outcomes):
            satisfiable, method, reason, error, attempts = question_outcome
            trace = ExecutionTrace(
                attempts=attempts,
                group_size=len(chunk),
                group_lead=executed == 0,
                shared_setup=shared_setup,
                runtime_hit=outcome.runtime_hit,
            )
            verdict = "error" if error is not None else verdict_name(satisfiable)
            if tracer is not None and traces is not None:
                leader = traces.get(entry.indices[0])
                if leader is not None:
                    children = []
                    if prepare_span_pending:
                        prepare_span_pending = False
                        prepare_attrs = {"shared": shared_setup}
                        if outcome.prepare_error is not None:
                            prepare_attrs["error"] = outcome.prepare_error
                        children.append(Span(
                            name="prepare",
                            ms=outcome.prepare_ms,
                            status=(
                                FAILED if outcome.prepare_error is not None
                                else "ok"
                            ),
                            attrs=prepare_attrs,
                        ))
                    children.extend(attempt_spans(attempts))
                    leader.span(
                        "chunk",
                        ms=trace.elapsed_ms,
                        status=FAILED if error is not None else "ok",
                        attrs=self._chunk_attrs(
                            outcome, dwell_ms, len(chunk), error=error
                        ),
                        children=children,
                    )
                    tracer.finish(
                        leader,
                        verdict=verdict,
                        route="error" if error is not None else route,
                        plan=plan,
                    )
                for index in entry.indices[1:]:
                    follower = traces.get(index)
                    if follower is not None:
                        follower.span(
                            "coalesced",
                            attrs={
                                "leader": (
                                    leader.trace_id if leader is not None
                                    else None
                                ),
                                "lane": outcome.lane,
                            },
                        )
                        tracer.finish(
                            follower,
                            verdict=verdict,
                            route="error" if error is not None else route,
                            plan=plan,
                        )
            if error is not None:
                # one question failing must not poison its groupmates;
                # every job awaiting it gets the per-job error
                stats.errors += len(entry.indices)
                self._observe(stats, plan, artifacts, trace, "error")
                if len(entry.indices) > 1:
                    self.telemetry.record_failure(plan, len(entry.indices) - 1)
                for index in entry.indices:
                    result = results[index]
                    result.error = error
                    result.method = "error"
                    result.route = "error"
                    emit(index)
                continue
            # errored entries are excluded so EngineStats and the per-plan
            # telemetry rows report the same grouped-job/reuse counts
            stats.grouped_jobs += 1
            if shared_setup and executed > 0:
                stats.setup_reuse += 1
            executed += 1
            self._observe(stats, plan, artifacts, trace, verdict_name(satisfiable))
            self._explore(stats, plan, entry.canonical, artifacts, trace)
            decision = CachedDecision(satisfiable, method, reason)
            self.cache.put(entry.key, decision)
            for ask_position, index in enumerate(entry.indices):
                result = results[index]
                result.satisfiable = satisfiable
                result.method = method
                result.reason = reason
                result.route = route
                result.cached = ask_position > 0  # coalesced onto the first ask
                result.elapsed_ms = trace.elapsed_ms if ask_position == 0 else 0.0
                emit(index)

    def _absorb_single(
        self,
        key: CacheKey,
        indices: list[int],
        plan: Plan,
        artifacts: SchemaArtifacts | None,
        canonical: Path,
        outcome: ChunkOutcome,
        results: list[JobResult | None],
        stats: EngineStats,
        tracer: Tracer | None = None,
        traces: dict[int, JobTrace] | None = None,
        dwell_ms: float = 0.0,
        emit: Callable[[int], None] = lambda index: None,
    ) -> None:
        """Fold one ungrouped pooled question back in (the
        ``--no-group-by-plan`` path: no group counters, no shared setup)."""
        if outcome.error is not None:
            satisfiable, method, reason, error, attempts = (
                None, "error", "", outcome.error, [],
            )
        else:
            satisfiable, method, reason, error, attempts = outcome.outcomes[0]
        verdict = "error" if error is not None else verdict_name(satisfiable)
        if tracer is not None and traces is not None:
            leader = traces.get(indices[0])
            if leader is not None:
                leader.span(
                    "chunk",
                    ms=sum(ms for _, ms, _ in attempts),
                    status=FAILED if error is not None else "ok",
                    attrs=self._chunk_attrs(outcome, dwell_ms, 1, error=error),
                    children=attempt_spans(attempts),
                )
                tracer.finish(
                    leader, verdict=verdict,
                    route="error" if error is not None else "pool",
                    plan=plan,
                )
            for index in indices[1:]:
                follower = traces.get(index)
                if follower is not None:
                    follower.span(
                        "coalesced",
                        attrs={
                            "leader": (
                                leader.trace_id if leader is not None else None
                            ),
                            "lane": outcome.lane,
                        },
                    )
                    tracer.finish(
                        follower, verdict=verdict,
                        route="error" if error is not None else "pool",
                        plan=plan,
                    )
        if error is not None:
            stats.errors += len(indices)
            self.telemetry.record_failure(plan, len(indices))
            for index in indices:
                results[index].error = error
                results[index].method = "error"
                results[index].route = "error"
                emit(index)
            return
        trace = ExecutionTrace(attempts=attempts)
        self._observe(stats, plan, artifacts, trace, verdict_name(satisfiable))
        self._explore(stats, plan, canonical, artifacts, trace)
        decision = CachedDecision(satisfiable, method, reason)
        self.cache.put(key, decision)
        for position, index in enumerate(indices):
            result = results[index]
            result.satisfiable = satisfiable
            result.method = method
            result.reason = reason
            result.cached = position > 0  # coalesced onto the first ask
            emit(index)

    def _observe(
        self,
        stats: EngineStats,
        plan: Plan,
        artifacts: SchemaArtifacts | None,
        trace: ExecutionTrace,
        verdict: str,
    ) -> None:
        """Feed one plan execution into per-plan telemetry and the cost
        model.

        The recorded latency is the decider-chain time from the trace —
        the same definition on the inline and pooled paths, so one plan's
        histogram never mixes wall time (with rewrite/fork/IPC overhead)
        with pure decide time.  Only *conclusive* attempts (sat/unsat)
        become cost-model samples: an `unknown` is cheap precisely
        because the decider gave up, and counting it would promote
        fast-but-useless semi-decision procedures to chain primary (they
        would then run on every job only to fall through)."""
        if verdict == "error":
            # a failed execution has no meaningful decision latency — a
            # ~0 ms sample would drag the histogram down (same rule as
            # the pooled worker-death path)
            self.telemetry.record_failure(plan)
        else:
            self.telemetry.record(
                plan, trace.elapsed_ms, verdict,
                decider=trace.decider, fallback=trace.fallback_used,
                group_size=trace.group_size, group_lead=trace.group_lead,
                shared_setup=trace.shared_setup, runtime_hit=trace.runtime_hit,
            )
            if trace.decider is not None:
                backend = decider_backend(trace.decider)
                stats.backend_answers[backend] = (
                    stats.backend_answers.get(backend, 0) + 1
                )
                if decider_traits(trace.decider):
                    stats.trait_routed_answers[trace.decider] = (
                        stats.trait_routed_answers.get(trace.decider, 0) + 1
                    )
        bucket = artifacts.cost_bucket if artifacts else size_bucket(None)
        for name, attempt_ms, outcome in trace.attempts:
            if outcome in ("sat", "unsat"):
                self.cost_model.observe(plan.signature, bucket, name, attempt_ms)

    def _explore(
        self,
        stats: EngineStats,
        plan: Plan,
        canonical: Path,
        artifacts: SchemaArtifacts | None,
        trace: ExecutionTrace,
    ) -> None:
        """Cost-model epsilon-exploration: normal operation only times
        the chain member that answers, so a fallback that would win
        stays unmeasured until someone calls ``calibrate()``.  With
        ``CostModel(explore_every=N)`` every N-th decision of a
        (signature × bucket) re-times the *stalest* chain member on the
        question just answered.  The probe runs in the engine's own
        process (after inline decides and while absorbing pooled
        outcomes) and its verdict is discarded — the job's answer is
        already committed — so exploration can never change a verdict,
        and the hygiene rule still applies: inconclusive probes record
        nothing."""
        chain = (plan.decider,) + plan.fallbacks
        if len(chain) < 2 or not self.cost_model.explore_every:
            return
        bucket = artifacts.cost_bucket if artifacts else size_bucket(None)
        conclusive = {
            name for name, _ms, outcome in trace.attempts
            if outcome in ("sat", "unsat")
        }
        probe = self.cost_model.exploration_candidate(
            plan.signature, bucket, chain, exclude=conclusive
        )
        if probe is None:
            return
        stats.explore_probes += 1
        # the probe must see exactly what execute_plan hands the chain:
        # the plan's rewrite passes applied (canonicalize already was) —
        # otherwise a rewrite-bearing plan's probe times a query shape
        # the decider never receives, or just declines it
        probe_query = canonical
        for pass_name in plan.rewrites:
            if pass_name == "canonicalize":
                continue
            rewritten = get_pass(pass_name).run(probe_query)
            if not rewritten.complete:
                return
            probe_query = rewritten.path
        spec = get_decider(probe)
        dtd = artifacts.dtd if artifacts else None
        probe_start = time.perf_counter()
        try:
            result = spec.call(probe_query, dtd, self.bounds)
        except Exception:
            # a decline (or a latent bug in a decider the plan never
            # needed) must not fail a job whose answer is already in
            return
        if result.satisfiable is not None:
            self.cost_model.observe(
                plan.signature, bucket, probe,
                (time.perf_counter() - probe_start) * 1e3,
            )

    def _result(
        self,
        job: Job,
        artifacts: SchemaArtifacts | None,
        decision: CachedDecision,
        route: str,
        cached: bool = False,
        elapsed_ms: float = 0.0,
    ) -> JobResult:
        return JobResult(
            id=job.id if job.id is not None else job.query_text,
            query=job.query_text,
            schema=job.schema,
            fingerprint=artifacts.fingerprint if artifacts else None,
            satisfiable=decision.satisfiable,
            method=decision.method,
            reason=decision.reason,
            route=route,
            cached=cached,
            elapsed_ms=elapsed_ms,
        )

    def _error_result(self, raw, error: ReproError) -> JobResult:
        query_text = schema = job_id = None
        try:
            job = Job.coerce(raw)
            query_text, schema, job_id = job.query_text, job.schema, job.id
        except ReproError:
            query_text = repr(raw)
        return JobResult(
            id=job_id if job_id is not None else (query_text or ""),
            query=query_text or "",
            schema=schema,
            fingerprint=None,
            satisfiable=None,
            method="error",
            route="error",
            error=str(error),
        )
