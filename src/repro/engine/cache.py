"""Bounded LRU decision cache.

Entries are keyed on ``(query_key(canonicalize(p)), schema fingerprint)``
— see :mod:`repro.xpath.canonical` — so syntactic variants of the same
question (commuted conjuncts, duplicated union branches, re-associated
compositions) share a single entry.  The cached record is the *decision*
(verdict, method, reason), deliberately not the witness tree: witnesses
can be large, are cheap to regenerate on demand, and would defeat the
bounded-memory guarantee.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.xpath.ast import Path
from repro.xpath.canonical import canonicalize, query_key

CacheKey = tuple[str, str, str]

#: fingerprint slot used for no-DTD decisions
NO_SCHEMA = "-"

#: bounds slot used when deciding with default bounds
DEFAULT_BOUNDS = "-"


def decision_key(query: Path, fingerprint: str | None, bounds=None) -> CacheKey:
    """The cache key of ``(query, schema, bounds)``: canonical query key ×
    schema fingerprint (``NO_SCHEMA`` when deciding without a DTD) ×
    search-bounds tag.

    Bounds are part of the key because they change the answer of the
    bounded semi-decision procedures: an ``unknown`` cached under tight
    bounds must not be served to an engine configured with larger ones.
    """
    return decision_key_for(canonicalize(query), fingerprint, bounds)


def decision_key_for(canonical: Path, fingerprint: str | None, bounds=None) -> CacheKey:
    """:func:`decision_key` for an already-canonicalized query — the batch
    engine canonicalizes once per job and reuses the form for both the
    cache key and the decision itself."""
    bounds_tag = DEFAULT_BOUNDS if bounds is None else repr(bounds)
    return (query_key(canonical), fingerprint or NO_SCHEMA, bounds_tag)


@dataclass(frozen=True)
class CachedDecision:
    """The compact, immutable record a cache entry stores."""

    satisfiable: bool | None
    method: str
    reason: str = ""


class DecisionCache:
    """Bounded LRU with hit/miss/eviction counters."""

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[CacheKey, CachedDecision] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: CacheKey) -> CachedDecision | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: CacheKey, decision: CachedDecision) -> None:
        self._entries[key] = decision
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def to_records(self) -> list:
        """Serialize current entries (LRU order, oldest first) for the
        engine's ``--state-dir`` persistence.  Counters are not part of
        the record: a reloaded cache starts cold statistically but warm
        in content."""
        return [
            [list(key), {
                "satisfiable": decision.satisfiable,
                "method": decision.method,
                "reason": decision.reason,
            }]
            for key, decision in self._entries.items()
        ]

    def load_records(self, records) -> int:
        """Insert persisted ``(key, decision)`` pairs (see
        :meth:`to_records`); malformed entries are skipped.  Returns the
        number of entries loaded."""
        loaded = 0
        for key, record in records:
            if not (isinstance(key, (list, tuple)) and len(key) == 3):
                continue
            if not (isinstance(record, dict) and "method" in record):
                continue
            satisfiable = record.get("satisfiable")
            if satisfiable is not None and not isinstance(satisfiable, bool):
                continue
            self.put(
                (str(key[0]), str(key[1]), str(key[2])),
                CachedDecision(
                    satisfiable, str(record["method"]), str(record.get("reason", ""))
                ),
            )
            loaded += 1
        return loaded

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> dict[str, int | float]:
        return {
            "capacity": self.capacity,
            "size": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }
