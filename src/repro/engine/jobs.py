"""JSONL job and result serialization for the batch engine.

A **job file** is one JSON object per line::

    {"query": "product[price and quote]", "schema": "catalog"}
    {"query": "A[not(B)]"}                          # no DTD
    {"id": "q-17", "query": "A//B", "schema": "docs"}

``schema`` references a name registered with the engine's
:class:`repro.engine.registry.SchemaRegistry` (or a full fingerprint).
A **result file** mirrors the jobs, one
:meth:`repro.engine.batch.JobResult.to_record` object per line.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.errors import EngineError
from repro.engine.batch import BatchReport, Job


def parse_job_line(line: str, line_number: int = 0) -> Job:
    try:
        record = json.loads(line)
    except json.JSONDecodeError as error:
        raise EngineError(f"jobs line {line_number}: invalid JSON ({error})") from None
    if not isinstance(record, dict):
        raise EngineError(f"jobs line {line_number}: expected an object, got {record!r}")
    try:
        return Job.coerce(record)
    except EngineError as error:
        raise EngineError(f"jobs line {line_number}: {error}") from None


def read_jobs(source: IO[str] | Iterable[str]) -> Iterator[Job]:
    """Yield jobs from an open file (or any iterable of JSONL lines);
    blank lines and ``#`` comment lines are skipped."""
    for line_number, raw in enumerate(source, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield parse_job_line(line, line_number)


def read_jobs_file(path: str) -> list[Job]:
    with open(path) as handle:
        return list(read_jobs(handle))


def write_results(handle: IO[str], report: BatchReport) -> None:
    """Write one JSON object per job result."""
    for result in report.results:
        handle.write(json.dumps(result.to_record(), sort_keys=True) + "\n")


def write_results_file(path: str, report: BatchReport) -> None:
    with open(path, "w") as handle:
        write_results(handle, report)


def write_jobs_file(path: str, jobs: Iterable[Job | dict]) -> int:
    """Write jobs as JSONL; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        for job in jobs:
            job = Job.coerce(job) if not isinstance(job, Job) else job
            record = {"query": job.query_text}
            if job.schema is not None:
                record["schema"] = job.schema
            if job.id is not None:
                record["id"] = job.id
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            count += 1
    return count
