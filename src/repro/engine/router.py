"""Multi-process scale-out: the schema-sharded front door.

``python -m repro route --workers N`` starts an asyncio router speaking
the **same JSONL job protocol** as ``repro serve`` — clients cannot tell
the difference — and fans the work out across N independent engine
processes:

* **worker fleet** — the router spawns N ``repro serve`` subprocesses
  (one unix socket each, under ``--worker-dir``) and/or attaches to
  pre-started sockets (``--attach``).  Spawned workers get the shared
  ``--state-tier`` on their command line, so every engine **warms its
  caches from the tier before its socket exists** — the router only
  accepts client traffic once every worker is connectable, hence no
  process ever plans cold;
* **schema-fingerprint sharding** — each job's schema resolves to its
  content fingerprint and ``crc32(fingerprint) % N`` picks the preferred
  shard (the persistent lanes' consistent-hash affinity trick, one
  level up), so one schema's plan cache, prepared contexts, and lane
  affinity concentrate in one process.  When the preferred shard is
  saturated (``--spill-depth`` jobs in flight) or down, the job spills
  to the least-loaded live shard (counted, like the lanes' spills);
* **exactly-once fan-in** — the router rewrites each job id to a unique
  token and keeps ``token -> (client, original id)``; the mapping is
  popped on the first response, so a worker that answers twice (or a
  retried job whose first attempt resurfaces) cannot duplicate a client
  result line.  Responses restore the client's original id (or the
  engine's query-text default, byte-compatible with ``repro serve``).
  A worker's backpressure shed (``status: retry``) never reaches the
  client: the front door owns delivery and requeues the job until a
  shard has capacity;
* **worker supervision** — a shard whose process dies or whose
  connection drops is restarted (up to ``--max-restarts`` times) and
  its in-flight jobs are re-dispatched exactly once; a job whose retry
  also dies gets an error response instead of a third attempt.

Lifecycle mirrors :class:`~repro.engine.server.EngineServer`: SIGTERM /
SIGINT stop intake, drain every routed job, then SIGTERM the managed
workers — each drains and snapshots the shared tier on its own — and
wait for them.  ``repro_router_*`` metrics (per-shard depth and job
gauges, spill / restart / retry counters) render into
``--metrics-out``.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal as signal_module
import sys
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.dtd.parser import parse_dtd
from repro.engine.jobs import parse_job_line
from repro.engine.registry import schema_fingerprint
from repro.engine.state import _atomic_write_text
from repro.errors import EngineError
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry

_LOG = get_logger("repro.engine.router")

#: in-flight jobs a preferred shard may hold before a job spills to the
#: least-loaded shard (the lanes' DEFAULT_LANE_QUEUE_DEPTH stance, sized
#: for whole processes: one serve worker batches up to 256 jobs)
DEFAULT_SPILL_DEPTH = 64

#: times one shard's process is restarted before it is left for dead
DEFAULT_MAX_RESTARTS = 3

#: seconds to wait for a spawned worker's socket to accept
DEFAULT_WORKER_BOOT_TIMEOUT = 120.0

#: shard key for jobs without a schema (decided over unconstrained trees)
NO_SCHEMA_KEY = "-"


def pick_shard(
    key: str,
    depths: Sequence[int],
    spill_depth: int,
    alive: Sequence[bool] | None = None,
) -> tuple[int, bool]:
    """Choose a shard for ``key``: the consistent-hash preferred shard
    unless it is saturated (``>= spill_depth`` in flight) or down, in
    which case the least-loaded live shard wins.  Returns ``(index,
    spilled)``; spilling to a shard at least as loaded as the preferred
    one is pointless, so the preferred shard keeps the job then.

    Pure function of its arguments — the routing policy in one testable
    place."""
    if not depths:
        raise EngineError("no shards")
    alive = alive if alive is not None else [True] * len(depths)
    live = [index for index, up in enumerate(alive) if up]
    if not live:
        raise EngineError("no live shards")
    preferred = zlib.crc32(key.encode("utf-8")) % len(depths)
    if alive[preferred] and depths[preferred] < spill_depth:
        return preferred, False
    least = min(live, key=lambda index: (depths[index], index))
    if least == preferred:
        return preferred, False
    if alive[preferred] and depths[least] >= depths[preferred]:
        return preferred, False
    return least, True


@dataclass
class RouterStats:
    """Routing-layer counters and gauges (``repro_router_*``)."""

    connections_total: int = 0
    connections_active: int = 0
    jobs_routed: int = 0
    results_returned: int = 0
    spills: int = 0
    restarts: int = 0
    retried_jobs: int = 0
    sheds_requeued: int = 0
    failed_jobs: int = 0
    invalid_lines: int = 0
    shard_jobs: dict[int, int] = field(default_factory=dict)
    shard_depth: dict[int, int] = field(default_factory=dict)

    def shards_used(self) -> int:
        return sum(1 for count in self.shard_jobs.values() if count)

    def register_metrics(self, registry) -> None:
        for name, attr, help_text in (
            ("connections", "connections_total",
             "client connections accepted by the router"),
            ("jobs", "jobs_routed", "jobs routed to engine shards"),
            ("results", "results_returned",
             "result lines fanned back to clients"),
            ("spills", "spills",
             "jobs routed off their preferred shard (hot or down)"),
            ("restarts", "restarts", "engine worker processes restarted"),
            ("retries", "retried_jobs",
             "in-flight jobs re-dispatched after a worker death"),
            ("requeues", "sheds_requeued",
             "jobs a worker shed under backpressure and the router "
             "requeued"),
            ("failures", "failed_jobs",
             "jobs answered with a router-side error"),
            ("invalid_lines", "invalid_lines",
             "request lines that were not valid job records"),
        ):
            registry.counter(f"repro_router_{name}_total", help_text).inc(
                getattr(self, attr)
            )
        registry.gauge(
            "repro_router_active_connections", "currently connected clients"
        ).set(self.connections_active)
        for index in sorted(self.shard_jobs):
            registry.counter(
                "repro_router_shard_jobs_total",
                "jobs routed per shard",
                {"shard": str(index)},
            ).inc(self.shard_jobs[index])
        for index in sorted(self.shard_depth):
            registry.gauge(
                "repro_router_shard_depth",
                "jobs in flight per shard",
                {"shard": str(index)},
            ).set(self.shard_depth[index])


class _Pending:
    """One routed job awaiting its result."""

    __slots__ = ("conn", "original_id", "query_text", "payload", "retried")

    def __init__(self, conn: "_ClientConn", original_id: str | None,
                 query_text: str, payload: dict[str, Any]) -> None:
        self.conn = conn
        self.original_id = original_id
        self.query_text = query_text
        self.payload = payload       # the rewritten job record (token id)
        self.retried = False


class _ClientConn:
    """Per-client state: outbound queue plus in-flight accounting."""

    def __init__(self, conn_id: int) -> None:
        self.conn_id = conn_id
        self.out_queue: asyncio.Queue = asyncio.Queue()
        self.inflight = 0
        self.eof = False
        self.drained = asyncio.Event()

    def settle(self) -> None:
        if self.eof and self.inflight == 0:
            self.drained.set()


class _Shard:
    """One engine worker: its socket, process (when managed), connection,
    and in-flight token map."""

    def __init__(self, index: int, socket_path: str, managed: bool) -> None:
        self.index = index
        self.socket_path = socket_path
        self.managed = managed
        self.process: asyncio.subprocess.Process | None = None
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.reader_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        self.out_queue: asyncio.Queue = asyncio.Queue()
        self.inflight: dict[str, _Pending] = {}
        self.alive = False
        self.restarts = 0

    @property
    def depth(self) -> int:
        return len(self.inflight)


class EngineRouter:
    """The asyncio front door behind ``repro route`` (see the module
    docstring for the routing model).

    ``on_ready`` is called with the router once every worker is
    connectable **and** the client endpoint is bound — the warm-boot
    barrier: by then each spawned engine has already adopted the shared
    tier's plans and cost cells."""

    def __init__(
        self,
        *,
        workers: int = 0,
        attach: Sequence[str] = (),
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        schema_files: dict[str, str] | None = None,
        worker_args: Sequence[str] = (),
        worker_dir: str | None = None,
        spill_depth: int = DEFAULT_SPILL_DEPTH,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        boot_timeout: float = DEFAULT_WORKER_BOOT_TIMEOUT,
        metrics_out: str | None = None,
        on_ready: Callable[["EngineRouter"], None] | None = None,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise EngineError(
                "route needs exactly one endpoint: --socket PATH or --port N"
            )
        if workers < 0:
            raise EngineError(f"workers must be non-negative, got {workers}")
        if workers + len(attach) < 1:
            raise EngineError("route needs at least one worker (or --attach)")
        if spill_depth < 1:
            raise EngineError(f"spill_depth must be positive, got {spill_depth}")
        if max_restarts < 0:
            raise EngineError(
                f"max_restarts must be non-negative, got {max_restarts}"
            )
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.spill_depth = spill_depth
        self.max_restarts = max_restarts
        self.boot_timeout = boot_timeout
        self.metrics_out = metrics_out
        self.on_ready = on_ready
        self.worker_args = list(worker_args)
        self.worker_dir = worker_dir
        self._own_worker_dir = False
        self.stats = RouterStats()
        self.endpoint: str | None = None
        # schema name -> content fingerprint: the shard key.  The router
        # never builds artifacts — fingerprinting parses the DTD once.
        self._fingerprints: dict[str, str] = {}
        for name, path in sorted((schema_files or {}).items()):
            with open(path) as handle:
                self._fingerprints[name] = schema_fingerprint(
                    parse_dtd(handle.read())
                )
        self.shards: list[_Shard] = []
        index = 0
        for _ in range(workers):
            self.shards.append(_Shard(index, "", managed=True))
            index += 1
        for sock in attach:
            shard = _Shard(index, sock, managed=False)
            self.shards.append(shard)
            index += 1
        for shard in self.shards:
            self.stats.shard_jobs[shard.index] = 0
            self.stats.shard_depth[shard.index] = 0
        self._shutdown: asyncio.Event | None = None
        self._client_tasks: set = set()
        self._next_conn_id = 0
        self._next_token = 0
        self._stopping = False

    # -- entry points -------------------------------------------------------
    def run(self) -> int:
        """Blocking entry point (the CLI): route until SIGTERM/SIGINT,
        then drain and exit 0."""
        asyncio.run(self.serve_forever())
        return 0

    def request_shutdown(self, reason: str = "request") -> None:
        if self._shutdown is not None and not self._shutdown.is_set():
            _LOG.warning("received %s: draining and shutting down", reason)
            self._shutdown.set()

    # -- worker fleet -------------------------------------------------------
    async def _spawn(self, shard: _Shard) -> None:
        """Start (or restart) a managed shard's ``repro serve`` process.
        The worker warms its caches from the shared tier during engine
        construction — before it binds its socket — so connectability
        implies a warm process."""
        shard.socket_path = os.path.join(
            self.worker_dir, f"engine-{shard.index}.sock"
        )
        if os.path.exists(shard.socket_path):
            os.unlink(shard.socket_path)
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--socket", shard.socket_path, *self.worker_args,
        ]
        shard.process = await asyncio.create_subprocess_exec(
            *argv, stdout=asyncio.subprocess.DEVNULL,
        )
        _LOG.info(
            "shard %d: spawned worker pid %d on %s",
            shard.index, shard.process.pid, shard.socket_path,
        )

    async def _connect(self, shard: _Shard) -> None:
        """Wait for the shard's socket to accept, then wire the reader
        and writer pumps."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.boot_timeout
        while True:
            if (
                shard.process is not None
                and shard.process.returncode is not None
            ):
                raise EngineError(
                    f"shard {shard.index}: worker exited with "
                    f"{shard.process.returncode} before accepting"
                )
            try:
                shard.reader, shard.writer = await asyncio.open_unix_connection(
                    shard.socket_path
                )
                break
            except (ConnectionError, OSError):
                if loop.time() >= deadline:
                    raise EngineError(
                        f"shard {shard.index}: worker socket "
                        f"{shard.socket_path} not accepting after "
                        f"{self.boot_timeout:.0f}s"
                    ) from None
                await asyncio.sleep(0.05)
        shard.alive = True
        shard.out_queue = asyncio.Queue()
        shard.reader_task = asyncio.create_task(self._shard_read_loop(shard))
        shard.writer_task = asyncio.create_task(self._shard_write_loop(shard))

    async def _start_shard(self, shard: _Shard) -> None:
        if shard.managed:
            await self._spawn(shard)
        await self._connect(shard)

    # -- shard pumps --------------------------------------------------------
    async def _shard_write_loop(self, shard: _Shard) -> None:
        while True:
            payload = await shard.out_queue.get()
            if payload is None:
                return
            try:
                shard.writer.write(
                    (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
                )
                await shard.writer.drain()
            except (ConnectionError, OSError):
                # the reader loop observes the same death and handles
                # redistribution; unsent payloads stay in shard.inflight
                return

    async def _shard_read_loop(self, shard: _Shard) -> None:
        try:
            while True:
                line = await shard.reader.readline()
                if not line:
                    break
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    _LOG.error(
                        "shard %d: unparseable response line", shard.index
                    )
                    continue
                if not isinstance(record, dict):
                    continue
                self._absorb(shard, record)
        except (ConnectionError, OSError):
            pass
        finally:
            if not self._stopping:
                await self._shard_down(shard)

    def _absorb(self, shard: _Shard, record: dict[str, Any]) -> None:
        """Fan one worker response back to its client — exactly once:
        the token mapping pops on first arrival, repeats drop."""
        token = record.get("id")
        pending = shard.inflight.pop(token, None) if token is not None else None
        if pending is None:
            return
        self.stats.shard_depth[shard.index] = shard.depth
        if record.get("status") == "retry":
            # worker backpressure: the engine shed the job unexecuted.
            # The front door owns delivery — requeue after a beat (the
            # shard drains between reads) instead of surfacing the shed
            # to the client.
            self.stats.sheds_requeued += 1
            asyncio.get_running_loop().call_later(
                0.05, self._redispatch, token, pending
            )
            return
        record["id"] = (
            pending.original_id if pending.original_id is not None
            else pending.query_text
        )
        self.stats.results_returned += 1
        pending.conn.inflight -= 1
        pending.conn.out_queue.put_nowait(record)
        pending.conn.settle()

    async def _shard_down(self, shard: _Shard) -> None:
        """Handle a dead shard: restart the worker (managed shards, up to
        ``max_restarts``), then re-dispatch its in-flight jobs exactly
        once — a job that already burned its retry gets an error
        response."""
        if not shard.alive:
            return
        shard.alive = False
        orphans = shard.inflight
        shard.inflight = {}
        self.stats.shard_depth[shard.index] = 0
        if shard.writer is not None:
            shard.writer.close()
        if (
            shard.managed and not self._stopping
            and shard.restarts < self.max_restarts
        ):
            shard.restarts += 1
            self.stats.restarts += 1
            _LOG.warning(
                "shard %d: worker died with %d jobs in flight; restarting "
                "(%d/%d)", shard.index, len(orphans), shard.restarts,
                self.max_restarts,
            )
            try:
                await self._start_shard(shard)
            except EngineError as error:
                _LOG.error("shard %d: restart failed: %s", shard.index, error)
        elif orphans:
            _LOG.error(
                "shard %d: down for good with %d jobs in flight",
                shard.index, len(orphans),
            )
        for token, pending in orphans.items():
            if pending.retried or not any(s.alive for s in self.shards):
                self._fail(pending, "engine worker died twice on this job"
                           if pending.retried else "no live engine workers")
                continue
            pending.retried = True
            self.stats.retried_jobs += 1
            self._dispatch(token, pending)

    def _redispatch(self, token: str, pending: _Pending) -> None:
        try:
            self._dispatch(token, pending)
        except EngineError as error:
            self._fail(pending, str(error))

    def _fail(self, pending: _Pending, message: str) -> None:
        self.stats.failed_jobs += 1
        pending.conn.inflight -= 1
        pending.conn.out_queue.put_nowait({
            "id": (
                pending.original_id if pending.original_id is not None
                else pending.query_text
            ),
            "status": "error",
            "error": message,
        })
        pending.conn.settle()

    # -- routing ------------------------------------------------------------
    def _shard_key(self, schema: str | None) -> str:
        if schema is None:
            return NO_SCHEMA_KEY
        # a registered name maps to its content fingerprint; an unknown
        # reference (raw fingerprint, or a name only workers know) still
        # hashes deterministically
        return self._fingerprints.get(schema, schema)

    def _dispatch(self, token: str, pending: _Pending) -> None:
        index, spilled = pick_shard(
            self._shard_key(pending.payload.get("schema")),
            [shard.depth for shard in self.shards],
            self.spill_depth,
            alive=[shard.alive for shard in self.shards],
        )
        shard = self.shards[index]
        if spilled:
            self.stats.spills += 1
        shard.inflight[token] = pending
        self.stats.shard_jobs[index] += 1
        self.stats.shard_depth[index] = shard.depth
        shard.out_queue.put_nowait(pending.payload)

    def _ingest(self, conn: _ClientConn, line: bytes) -> None:
        text = line.decode("utf-8", "replace").strip()
        if not text or text.startswith("#"):
            return
        try:
            job = parse_job_line(text)
        except EngineError as error:
            self.stats.invalid_lines += 1
            conn.out_queue.put_nowait({"status": "error", "error": str(error)})
            return
        self._next_token += 1
        token = f"r{self._next_token}"
        payload: dict[str, Any] = {"query": job.query_text, "id": token}
        if job.schema is not None:
            payload["schema"] = job.schema
        pending = _Pending(conn, job.id, job.query_text, payload)
        conn.inflight += 1
        self.stats.jobs_routed += 1
        try:
            self._dispatch(token, pending)
        except EngineError as error:
            self._fail(pending, str(error))

    # -- client side --------------------------------------------------------
    async def _client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._client_tasks.add(task)
        self._next_conn_id += 1
        conn = _ClientConn(self._next_conn_id)
        self.stats.connections_total += 1
        self.stats.connections_active += 1
        writer_task = asyncio.create_task(self._client_write_loop(conn, writer))
        try:
            await self._client_read_loop(conn, reader)
        finally:
            conn.eof = True
            conn.settle()
            try:
                await conn.drained.wait()
            finally:
                await conn.out_queue.put(None)
                try:
                    await writer_task
                finally:
                    self.stats.connections_active -= 1
                    self._client_tasks.discard(task)
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass

    async def _client_read_loop(self, conn: _ClientConn, reader) -> None:
        shutdown_wait = asyncio.ensure_future(self._shutdown.wait())
        try:
            while True:
                read = asyncio.ensure_future(reader.readline())
                done, _ = await asyncio.wait(
                    {read, shutdown_wait},
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if read not in done:
                    read.cancel()
                    try:
                        await read
                    except (asyncio.CancelledError, ConnectionError, OSError):
                        pass
                    return
                try:
                    line = read.result()
                except (ConnectionError, OSError):
                    return
                if not line:
                    return
                self._ingest(conn, line)
        finally:
            shutdown_wait.cancel()
            try:
                await shutdown_wait
            except asyncio.CancelledError:
                pass

    async def _client_write_loop(self, conn: _ClientConn, writer) -> None:
        while True:
            record = await conn.out_queue.get()
            if record is None:
                return
            try:
                writer.write(
                    (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
            except (ConnectionError, OSError):
                # client went away; keep draining so in-flight results
                # flow into the void until the sentinel
                continue

    # -- lifecycle ----------------------------------------------------------
    async def serve_forever(self) -> None:
        loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        for signum in (signal_module.SIGTERM, signal_module.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, self.request_shutdown,
                    signal_module.Signals(signum).name,
                )
            except (NotImplementedError, RuntimeError):
                pass
        if any(shard.managed for shard in self.shards):
            if self.worker_dir is None:
                self.worker_dir = tempfile.mkdtemp(prefix="repro-route-")
                self._own_worker_dir = True
            else:
                os.makedirs(self.worker_dir, exist_ok=True)
        try:
            # boot the whole fleet before binding the client endpoint:
            # cache warming happens inside each worker's engine
            # construction, so "router accepts" == "no cold planners"
            await asyncio.gather(
                *(self._start_shard(shard) for shard in self.shards)
            )
        except EngineError:
            await self._stop_workers()
            raise
        if self.socket_path is not None:
            if os.path.exists(self.socket_path):
                _LOG.warning("removing stale socket %s", self.socket_path)
                os.unlink(self.socket_path)
            server = await asyncio.start_unix_server(
                self._client, path=self.socket_path
            )
            self.endpoint = f"unix:{self.socket_path}"
        else:
            server = await asyncio.start_server(
                self._client, host=self.host, port=self.port
            )
            self.port = server.sockets[0].getsockname()[1]
            self.endpoint = f"{self.host}:{self.port}"
        _LOG.info(
            "routing on %s across %d shards (spill_depth=%d)",
            self.endpoint, len(self.shards), self.spill_depth,
        )
        if self.on_ready is not None:
            self.on_ready(self)
        try:
            await self._shutdown.wait()
        finally:
            server.close()
            await server.wait_closed()
            if self._client_tasks:
                await asyncio.gather(
                    *list(self._client_tasks), return_exceptions=True
                )
            await self._drain_shards()
            self._stopping = True
            await self._stop_workers()
            if self.socket_path is not None:
                try:
                    os.unlink(self.socket_path)
                except OSError:
                    pass
            if self.metrics_out is not None:
                self._write_metrics()
            _LOG.info(
                "drained and closed (%d jobs over %d connections, "
                "%d shards used)", self.stats.jobs_routed,
                self.stats.connections_total, self.stats.shards_used(),
            )

    async def _drain_shards(self) -> None:
        """Client handlers have finished, which means every in-flight job
        was answered or failed — unless a worker death is mid-recovery;
        give redistribution a bounded grace period."""
        deadline = asyncio.get_running_loop().time() + 30.0
        while any(shard.inflight for shard in self.shards):
            if asyncio.get_running_loop().time() >= deadline:
                _LOG.error(
                    "shutdown with %d jobs still in flight",
                    sum(shard.depth for shard in self.shards),
                )
                break
            await asyncio.sleep(0.05)

    async def _stop_workers(self) -> None:
        self._stopping = True
        for shard in self.shards:
            for task in (shard.reader_task, shard.writer_task):
                if task is not None:
                    task.cancel()
            if shard.writer is not None:
                shard.writer.close()
            shard.alive = False
        for shard in self.shards:
            process = shard.process
            if process is None or process.returncode is not None:
                continue
            # SIGTERM: the worker drains and snapshots the shared tier
            try:
                process.terminate()
            except ProcessLookupError:
                continue
            try:
                await asyncio.wait_for(process.wait(), timeout=30.0)
            except asyncio.TimeoutError:
                _LOG.error(
                    "shard %d: worker pid %d ignored SIGTERM; killing",
                    shard.index, process.pid,
                )
                process.kill()
                await process.wait()

    def metrics_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        self.stats.register_metrics(registry)
        return registry

    def _write_metrics(self) -> None:
        try:
            _atomic_write_text(
                self.metrics_out,
                self.metrics_registry().render_prometheus(),
            )
        except OSError as error:
            _LOG.error("metrics write to %s failed: %s", self.metrics_out, error)
