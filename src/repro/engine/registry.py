"""Schema registry: DTD fingerprinting and per-schema artifact caching.

``decide()`` treats every call as independent: it re-classifies the DTD
(disjunction-freeness, recursion, ...) on every query.  A production
checker sees millions of queries against a handful of schemas, so the
registry runs the expensive ``repro.dtd`` pipeline **once per schema** and
hands the precomputed record to the dispatcher through the ``artifacts``
hook of :func:`repro.sat.dispatch.decide`.

A schema is identified by a **fingerprint** — a content hash of the
canonical rendering produced by :meth:`repro.dtd.model.DTD.describe`
(root first, element types alphabetical; it round-trips through
:func:`repro.dtd.parser.parse_dtd`).  Registering the same content twice,
even under different names, shares one artifact record.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator

from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.dtd.normalize import NormalizationResult, normalize
from repro.dtd.parser import parse_dtd
from repro.dtd.properties import classify
from repro.errors import EngineError
from repro.sat.planner import Plan


def schema_fingerprint(dtd: DTD) -> str:
    """Stable content hash of a DTD (independent of how it was written:
    whitespace, comments, and declaration order do not matter)."""
    return hashlib.sha256(dtd.describe().encode("utf-8")).hexdigest()


@dataclass
class SchemaArtifacts:
    """Everything the engine precomputes for one schema.

    ``classification`` (and the termination check) runs at registration
    time — the dispatcher and the engine's routing consult it on every
    query.  ``graph`` and ``normalized`` are built on first use and then
    cached for the schema's lifetime (they serve registry *clients* —
    workload generators, audits — not the dispatch hot path).

    ``plan_cache`` holds the query planner's routing decisions for this
    schema, keyed by feature signature: the first query of each fragment
    shape pays for planning (one registry scan), every later query —
    across batches, engines, and plain ``decide(..., artifacts=)`` calls —
    reuses the cached :class:`~repro.sat.planner.Plan`.
    """

    name: str
    fingerprint: str
    dtd: DTD
    classification: dict[str, bool] = field(init=False)
    plan_cache: dict[str, "Plan"] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.dtd.require_terminating()
        self.classification = classify(self.dtd)

    @cached_property
    def graph(self) -> DTDGraph:
        """The dependency graph ``G_D`` (computed once, on demand)."""
        return DTDGraph(self.dtd)

    @property
    def disjunction_free(self) -> bool:
        return self.classification["disjunction_free"]

    @property
    def nonrecursive(self) -> bool:
        return self.classification["nonrecursive"]

    @cached_property
    def normalized(self) -> NormalizationResult:
        """Proposition 3.3 normal form ``N(D)`` (computed once, on demand)."""
        return normalize(self.dtd)

    @cached_property
    def cost_bucket(self) -> str:
        """The cost model's schema-size bucket, computed once —
        ``DTD.size()`` walks every production, too costly per decided
        job."""
        from repro.sat.costmodel import size_bucket

        return size_bucket(self.dtd.size())

    @property
    def short_fingerprint(self) -> str:
        return self.fingerprint[:12]

    def describe(self) -> str:
        classes = ", ".join(name for name, value in self.classification.items() if value)
        return (
            f"{self.name} [{self.short_fingerprint}] "
            f"|D|={self.dtd.size()}, {len(self.dtd.element_types)} types"
            + (f" ({classes})" if classes else "")
        )


class SchemaRegistry:
    """Named, fingerprint-deduplicated collection of schema artifacts."""

    def __init__(self) -> None:
        self._by_name: dict[str, SchemaArtifacts] = {}
        self._by_fingerprint: dict[str, SchemaArtifacts] = {}
        self._pending_plans: dict[str, dict[str, Plan]] = {}
        self._pending_names: dict[str, str] = {}
        self.builds = 0            # artifact pipelines actually run
        self.dedup_hits = 0        # registrations resolved to an existing record
        self.persisted_plans = 0   # plans adopted from a persisted state dir

    # -- registration -------------------------------------------------------
    def register(self, name: str, schema: DTD | str) -> SchemaArtifacts:
        """Register a schema under ``name``; ``schema`` is a parsed
        :class:`DTD` or the textual syntax.  Content already registered
        (under any name) reuses the existing artifact record."""
        dtd = parse_dtd(schema) if isinstance(schema, str) else schema
        fingerprint = schema_fingerprint(dtd)
        artifacts = self._by_fingerprint.get(fingerprint)
        if artifacts is None:
            artifacts = SchemaArtifacts(name=name, fingerprint=fingerprint, dtd=dtd)
            self._by_fingerprint[fingerprint] = artifacts
            self.builds += 1
            self._apply_pending_plans(artifacts)
        else:
            self.dedup_hits += 1
        self._by_name[name] = artifacts
        return artifacts

    # -- persisted plans ----------------------------------------------------
    def adopt_plans(
        self,
        plans_by_fingerprint: dict[str, dict[str, Plan]],
        names: dict[str, str] | None = None,
    ) -> int:
        """Warm plan caches from persisted state (``--state-dir``): plans
        for already-registered schemas are applied immediately, the rest
        wait for their schema's registration.  Existing cache entries win
        (they were planned against the live cost model).  Returns the
        number of plans applied right away."""
        applied = 0
        for fingerprint, per_schema in plans_by_fingerprint.items():
            pending = self._pending_plans.setdefault(fingerprint, {})
            pending.update(per_schema)
            if names and fingerprint in names:
                self._pending_names[fingerprint] = names[fingerprint]
            artifacts = self._by_fingerprint.get(fingerprint)
            if artifacts is not None:
                applied += self._apply_pending_plans(artifacts)
        return applied

    def discard_pending_plans(self) -> int:
        """Drop adopted-but-unapplied persisted plans (used by
        ``BatchEngine.retune``: a schema registered afterwards must be
        replanned against current measurements, not handed a stale
        persisted plan).  Returns the number of plans discarded."""
        dropped = sum(len(per_schema) for per_schema in self._pending_plans.values())
        self._pending_plans.clear()
        self._pending_names.clear()
        return dropped

    def pending_plan_records(self) -> dict[str, tuple[str, dict[str, Plan]]]:
        """Adopted plans whose schema was never registered this run, as
        ``fingerprint -> (last known name, plans)``.  State persistence
        writes these back so alternating workloads sharing one state dir
        do not erase each other's warm plans."""
        return {
            fingerprint: (
                self._pending_names.get(fingerprint, "(unregistered)"),
                dict(per_schema),
            )
            for fingerprint, per_schema in self._pending_plans.items()
            if per_schema
        }

    def plan_records(self) -> dict[str, tuple[str, dict[str, Plan]]]:
        """Every plan worth persisting, as ``fingerprint -> (name,
        signature -> Plan)``: the live per-schema plan caches plus the
        adopted-but-unapplied plans of schemas never registered this run
        (:meth:`pending_plan_records`) — the one source both the JSON
        state dir and the SQLite state tier serialize from."""
        records: dict[str, tuple[str, dict[str, Plan]]] = {}
        for artifacts in self:
            if artifacts.plan_cache:
                records[artifacts.fingerprint] = (
                    artifacts.name, dict(artifacts.plan_cache)
                )
        for fingerprint, entry in self.pending_plan_records().items():
            records.setdefault(fingerprint, entry)
        return records

    def _apply_pending_plans(self, artifacts: SchemaArtifacts) -> int:
        pending = self._pending_plans.pop(artifacts.fingerprint, None)
        if not pending:
            return 0
        applied = 0
        for signature, plan in pending.items():
            if signature not in artifacts.plan_cache:
                artifacts.plan_cache[signature] = plan
                applied += 1
        self.persisted_plans += applied
        return applied

    def register_file(self, name: str, path: str) -> SchemaArtifacts:
        with open(path) as handle:
            return self.register(name, handle.read())

    # -- lookup -------------------------------------------------------------
    def get(self, ref: str) -> SchemaArtifacts:
        """Resolve a schema reference: a registered name or a (full)
        fingerprint; raises :class:`EngineError` when unknown."""
        artifacts = self._by_name.get(ref) or self._by_fingerprint.get(ref)
        if artifacts is None:
            known = ", ".join(sorted(self._by_name)) or "(none)"
            raise EngineError(f"unknown schema {ref!r}; registered: {known}")
        return artifacts

    def __contains__(self, ref: str) -> bool:
        return ref in self._by_name or ref in self._by_fingerprint

    def __len__(self) -> int:
        return len(self._by_fingerprint)

    def __iter__(self) -> Iterator[SchemaArtifacts]:
        return iter(self._by_fingerprint.values())

    @property
    def names(self) -> list[str]:
        return sorted(self._by_name)

    def stats(self) -> dict[str, int]:
        return {
            "schemas": len(self._by_fingerprint),
            "names": len(self._by_name),
            "builds": self.builds,
            "dedup_hits": self.dedup_hits,
            "plans": sum(
                len(artifacts.plan_cache)
                for artifacts in self._by_fingerprint.values()
            ),
            "persisted_plans": self.persisted_plans,
        }
