"""Shared engine state tier: one SQLite database, many engine processes.

The JSON state dir (:mod:`repro.engine.state`) is a whole-file snapshot:
correct for one process, lossy for a fleet — N engines sharing a
``--state-dir`` clobber each other's plans and cost samples on every
save.  :class:`StateTier` keeps the same *content* (plans, per-plan
telemetry, cost-model cells, cached decisions, scheduler tunables,
engine stats) in a single SQLite database that any number of processes
on the host read and write concurrently:

* **WAL mode** so readers never block the writer and vice versa, with a
  ``busy_timeout`` plus a bounded retry loop around every write
  transaction — two engines snapshotting at once serialize instead of
  failing;
* **last-writer-wins per key** for plans (``fingerprint × signature``),
  decisions (``query × fingerprint × bounds``), telemetry rows
  (``telemetry_key``), and scheduler tunables — a newer snapshot of the
  same key replaces the older one, different keys never interfere;
* **monotonic merge for cost samples**: each :meth:`save` writes only
  the samples this process observed since its last load/save (the delta
  against a per-handle baseline) and folds them into the stored cell
  with ``count = count + Δcount`` / ``total_ms = total_ms + Δtotal`` /
  ``last_tick = max`` — a float-weighted combine that preserves means
  and counts, so N concurrent writers lose no samples;
* **decay hygiene**: cells the in-process model's ``decay()`` aged out
  are *deleted* from the tier (``CostModel.consume_dropped``), so a
  stale shared row cannot resurrect a retired measurement;
* a **versioned schema** (``meta.tier_version``) — a newer on-disk
  version refuses loudly instead of corrupting, an unreadable database
  file is set aside as ``*.corrupt`` and rebuilt (state is an
  optimization, never a correctness requirement).

``--state-tier PATH`` accepts either a database file (``*.sqlite`` /
``*.db``) or a directory, where the database lives at
``<dir>/state.sqlite``.  Pointing the tier at a **legacy JSON state
dir** migrates it automatically on first open: the JSON files are read
through :func:`repro.engine.state.load_state` and imported losslessly
(they are left in place, untouched).  ``metrics.prom`` keeps being
written next to the database so textfile collectors need no change.
"""

from __future__ import annotations

import json
import os
import socket
import sqlite3
import threading
import time
from typing import Any

from repro.engine.state import (
    COST_MODEL_FILE,
    DECISIONS_FILE,
    ENGINE_STATS_FILE,
    METRICS_FILE,
    PLANS_FILE,
    SCHEDULER_FILE,
    TELEMETRY_FILE,
    PersistedState,
    _SCHEDULER_TUNABLES,
    _atomic_write_text,
    cap_decision_records,
    load_state as _load_json_state,
)
from repro.errors import EngineError
from repro.obs.log import get_logger
from repro.sat.costmodel import CostModel
from repro.sat.planner import Plan
from repro.sat.telemetry import PlanTelemetry

_LOG = get_logger("repro.engine.statetier")

#: bump when the table layout changes; a tier written by a *newer*
#: version refuses to open (downgrade protection), an older one upgrades
TIER_VERSION = 1

#: database filename when ``--state-tier`` names a directory
TIER_FILENAME = "state.sqlite"

#: path suffixes under which ``--state-tier PATH`` is the database itself
_DB_SUFFIXES = (".sqlite", ".sqlite3", ".db")

#: legacy JSON files whose presence next to a fresh database triggers
#: the one-time auto-migration
_LEGACY_FILES = (
    PLANS_FILE, TELEMETRY_FILE, COST_MODEL_FILE,
    DECISIONS_FILE, SCHEDULER_FILE, ENGINE_STATS_FILE,
)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS plans (
    fingerprint TEXT NOT NULL,
    signature TEXT NOT NULL,
    name TEXT NOT NULL,
    plan TEXT NOT NULL,
    updated REAL NOT NULL,
    PRIMARY KEY (fingerprint, signature)
);
CREATE TABLE IF NOT EXISTS cost_cells (
    signature TEXT NOT NULL,
    bucket TEXT NOT NULL,
    decider TEXT NOT NULL,
    count REAL NOT NULL,
    total_ms REAL NOT NULL,
    last_tick INTEGER NOT NULL,
    PRIMARY KEY (signature, bucket, decider)
);
CREATE TABLE IF NOT EXISTS decisions (
    qkey TEXT NOT NULL,
    fingerprint TEXT NOT NULL,
    bounds TEXT NOT NULL,
    satisfiable INTEGER,
    method TEXT NOT NULL,
    reason TEXT NOT NULL,
    updated REAL NOT NULL,
    PRIMARY KEY (qkey, fingerprint, bounds)
);
CREATE TABLE IF NOT EXISTS telemetry (
    key TEXT PRIMARY KEY,
    plan TEXT,
    stats TEXT NOT NULL,
    updated REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS scheduler (
    name TEXT PRIMARY KEY,
    value TEXT NOT NULL,
    updated REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS engine_stats (
    process TEXT PRIMARY KEY,
    stats TEXT NOT NULL,
    updated REAL NOT NULL
);
"""


def resolve_tier_path(path: str) -> str:
    """The database file a ``--state-tier PATH`` names: the path itself
    when it looks like (or already is) a database file, otherwise
    ``PATH/state.sqlite``."""
    if path.endswith(_DB_SUFFIXES) or os.path.isfile(path):
        return path
    return os.path.join(path, TIER_FILENAME)


class StateTier:
    """One shared SQLite state database (see the module docstring).

    A ``StateTier`` is a per-process *handle*: it owns one connection,
    the per-handle cost-sample baseline, and the tier's read/write/merge
    counters (``register_metrics`` publishes them as ``repro_tier_*``).
    The handle is thread-safe (one internal lock serializes its own
    operations); cross-process safety comes from SQLite itself.
    """

    def __init__(
        self,
        path: str,
        *,
        busy_timeout: float = 5.0,
        max_retries: int = 5,
    ) -> None:
        if busy_timeout <= 0:
            raise EngineError(
                f"busy_timeout must be positive, got {busy_timeout}"
            )
        if max_retries < 0:
            raise EngineError(
                f"max_retries must be non-negative, got {max_retries}"
            )
        self.path = resolve_tier_path(path)
        self.busy_timeout = busy_timeout
        self.max_retries = max_retries
        self.warnings: list[str] = []
        # repro_tier_* counters
        self.loads = 0
        self.saves = 0
        self.rows_read = 0
        self.rows_written = 0
        self.cells_merged = 0
        self.cells_deleted = 0
        self.lock_retries = 0
        self.migrated_records = 0
        self._lock = threading.RLock()
        self._cost_baseline: dict[tuple[str, str, str], tuple[float, float]] = {}
        self._closed = False
        directory = os.path.dirname(self.path) or "."
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.path)
        self._conn = self._open(fresh)
        if fresh:
            self._migrate_legacy_json(directory)

    # -- connection lifecycle ------------------------------------------------
    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            self.path,
            timeout=self.busy_timeout,
            isolation_level=None,       # explicit BEGIN IMMEDIATE below
            check_same_thread=False,    # guarded by self._lock
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={int(self.busy_timeout * 1000)}")
        conn.execute("PRAGMA synchronous=NORMAL")
        return conn

    def _open(self, fresh: bool) -> sqlite3.Connection:
        try:
            return self._init_schema(self._connect())
        except sqlite3.DatabaseError as error:
            if fresh:
                raise EngineError(f"state tier {self.path}: {error}") from error
            # an unreadable existing database: set it aside and rebuild —
            # shared state is an optimization, refusing to serve over a
            # corrupt file would turn it into a correctness requirement
            corrupt = self.path + ".corrupt"
            message = (
                f"state tier {self.path}: unreadable ({error}); "
                f"moved aside to {corrupt} and rebuilt empty"
            )
            self.warnings.append(message)
            _LOG.warning(message)
            os.replace(self.path, corrupt)
            return self._init_schema(self._connect())

    def _init_schema(self, conn: sqlite3.Connection) -> sqlite3.Connection:
        conn.executescript(_SCHEMA)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'tier_version'"
        ).fetchone()
        if row is None:
            conn.execute(
                "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                ("tier_version", str(TIER_VERSION)),
            )
        elif int(row[0]) > TIER_VERSION:
            conn.close()
            raise EngineError(
                f"state tier {self.path}: written by tier version {row[0]}, "
                f"this build understands {TIER_VERSION}; refusing to open"
            )
        # (older versions would upgrade here; version 1 is the first)
        return conn

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def __enter__(self) -> "StateTier":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def _require_open(self) -> None:
        if self._closed:
            raise EngineError("state tier already closed")

    # -- retry plumbing ------------------------------------------------------
    def _with_retry(self, label: str, operation):
        """Run ``operation`` (which issues SQL), retrying on lock/busy
        contention with exponential backoff; other database errors and
        retry exhaustion surface as :class:`EngineError`."""
        delay = 0.05
        for attempt in range(self.max_retries + 1):
            try:
                return operation()
            except sqlite3.OperationalError as error:
                message = str(error).lower()
                if "locked" not in message and "busy" not in message:
                    raise EngineError(
                        f"state tier {label} failed: {error}"
                    ) from error
                if self._conn.in_transaction:
                    self._conn.execute("ROLLBACK")
                if attempt == self.max_retries:
                    raise EngineError(
                        f"state tier {label}: still locked after "
                        f"{self.max_retries} retries"
                    ) from error
                self.lock_retries += 1
                time.sleep(delay)
                delay = min(delay * 2, 0.5)

    # -- legacy JSON migration ----------------------------------------------
    def _migrate_legacy_json(self, directory: str) -> None:
        """One-time import of a JSON state dir living next to a freshly
        created database (``--state-tier state/`` over an old
        ``--state-dir state/``).  The JSON files are read through the
        forgiving :func:`~repro.engine.state.load_state` and left on
        disk untouched."""
        if not any(
            os.path.exists(os.path.join(directory, name))
            for name in _LEGACY_FILES
        ):
            return
        state = _load_json_state(directory)
        self.warnings.extend(state.warnings)
        before = self.rows_written
        self._write_state(
            plan_records={
                fingerprint: (state.plan_names.get(fingerprint, "(migrated)"),
                              per_schema)
                for fingerprint, per_schema in state.plans.items()
            },
            telemetry=state.telemetry,
            cost_cells={
                key: (entry.count, entry.total_ms, entry.last_tick)
                for key, entry in (
                    state.cost_model.cells() if state.cost_model is not None
                    else {}
                ).items()
            },
            cost_min_samples=(
                state.cost_model.min_samples
                if state.cost_model is not None else None
            ),
            decision_records=[
                [list(key), record] for key, record in state.decisions
            ],
            scheduler=state.scheduler or None,
            engine_stats=state.engine_stats,
            process="legacy-json",
            extra_meta={"migrated_from_json": str(time.time())},
        )
        self.migrated_records = self.rows_written - before
        _LOG.info(
            "state tier %s: migrated %d records from the legacy JSON "
            "state dir %s", self.path, self.migrated_records, directory,
        )

    # -- load ----------------------------------------------------------------
    def load(self) -> PersistedState:
        """Read everything into a :class:`PersistedState` — the same
        shape :func:`repro.engine.state.load_state` returns, so the
        engine adopts tier state through the existing code path.
        Malformed rows degrade to warnings, never failures."""
        with self._lock:
            self._require_open()
            state = self._with_retry("load", self._read_state)
        self.loads += 1
        return state

    def _read_state(self) -> PersistedState:
        state = PersistedState()

        for fingerprint, signature, name, plan_json in self._conn.execute(
            "SELECT fingerprint, signature, name, plan FROM plans"
        ):
            self.rows_read += 1
            try:
                plan = Plan.from_dict(json.loads(plan_json))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as error:
                self._warn(
                    state,
                    f"plan {fingerprint[:12]}/{signature}: {error}; skipped",
                )
                continue
            state.plans.setdefault(fingerprint, {})[signature] = plan
            state.plan_names[fingerprint] = name

        telemetry_record: dict[str, Any] = {}
        for key, plan_json, stats_json in self._conn.execute(
            "SELECT key, plan, stats FROM telemetry"
        ):
            self.rows_read += 1
            try:
                telemetry_record[key] = {
                    "plan": json.loads(plan_json) if plan_json else None,
                    "stats": json.loads(stats_json),
                }
            except json.JSONDecodeError as error:
                self._warn(state, f"telemetry {key}: {error}; skipped")
        if telemetry_record:
            state.telemetry = PlanTelemetry.from_dict(
                {"plans": telemetry_record}
            )

        min_samples_row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'cost_min_samples'"
        ).fetchone()
        cost_entries = []
        for row in self._conn.execute(
            "SELECT signature, bucket, decider, count, total_ms, last_tick "
            "FROM cost_cells"
        ):
            self.rows_read += 1
            cost_entries.append(list(row))
        if cost_entries or min_samples_row is not None:
            state.cost_model = CostModel.from_dict({
                "min_samples": (
                    min_samples_row[0] if min_samples_row is not None else 3
                ),
                "entries": cost_entries,
            })

        for qkey, fingerprint, bounds, satisfiable, method, reason in (
            self._conn.execute(
                "SELECT qkey, fingerprint, bounds, satisfiable, method, "
                "reason FROM decisions ORDER BY updated, rowid"
            )
        ):
            self.rows_read += 1
            state.decisions.append((
                (qkey, fingerprint, bounds),
                {
                    "satisfiable": (
                        None if satisfiable is None else bool(satisfiable)
                    ),
                    "method": method,
                    "reason": reason,
                },
            ))

        for name, value_json in self._conn.execute(
            "SELECT name, value FROM scheduler"
        ):
            self.rows_read += 1
            validate = _SCHEDULER_TUNABLES.get(name)
            if validate is None:
                continue
            try:
                state.scheduler[name] = validate(json.loads(value_json))
            except (json.JSONDecodeError, ValueError, TypeError) as error:
                self._warn(state, f"scheduler {name}: {error}; ignored")

        stats_row = self._conn.execute(
            "SELECT stats FROM engine_stats ORDER BY updated DESC, rowid DESC "
            "LIMIT 1"
        ).fetchone()
        if stats_row is not None:
            self.rows_read += 1
            try:
                stats = json.loads(stats_row[0])
                if isinstance(stats, dict):
                    state.engine_stats = stats
            except json.JSONDecodeError as error:
                self._warn(state, f"engine stats: {error}; skipped")
        return state

    def _warn(self, state: PersistedState, message: str) -> None:
        message = f"state tier {self.path}: {message}"
        state.warnings.append(message)
        self.warnings.append(message)
        _LOG.warning(message)

    def engine_stats_rows(self) -> dict[str, dict[str, Any]]:
        """Per-process engine-stats snapshots (``process -> stats``):
        each engine saves under its own host:pid identity, so a fleet's
        last-run stats are inspectable side by side (``repro stats
        --plans --state-tier --json`` and the scale-out bench read
        these)."""
        with self._lock:
            self._require_open()
            rows = {}
            for process, stats_json in self._conn.execute(
                "SELECT process, stats FROM engine_stats ORDER BY updated"
            ):
                try:
                    stats = json.loads(stats_json)
                except json.JSONDecodeError:
                    continue
                if isinstance(stats, dict):
                    rows[process] = stats
            return rows

    # -- cost baseline -------------------------------------------------------
    def note_cost_baseline(self, cost_model: CostModel) -> None:
        """Snapshot ``cost_model``'s cells as this handle's baseline.
        The engine calls this right after merging a loaded tier into its
        model; every later :meth:`save` writes only the growth since the
        baseline, so samples the tier already holds are never
        double-counted and concurrent writers' samples all land."""
        self._cost_baseline = {
            key: (entry.count, entry.total_ms)
            for key, entry in cost_model.cells().items()
        }

    def _cost_deltas(
        self, cost_model: CostModel
    ) -> dict[tuple[str, str, str], tuple[float, float, int]]:
        deltas = {}
        for key, entry in cost_model.cells().items():
            base_count, base_total = self._cost_baseline.get(key, (0.0, 0.0))
            # decay() shrinks local cells below the baseline; the tier
            # only ages cells by whole drops (consume_dropped), so a
            # negative delta clamps to "nothing new to contribute"
            count = max(0.0, entry.count - base_count)
            total = max(0.0, entry.total_ms - base_total)
            if count > 0.0 or total > 0.0:
                deltas[key] = (count, total, entry.last_tick)
        return deltas

    # -- save ----------------------------------------------------------------
    def save(
        self,
        *,
        registry=None,
        telemetry: PlanTelemetry | None = None,
        cost_model: CostModel | None = None,
        cache=None,
        scheduler: dict[str, Any] | None = None,
        decision_cap_per_schema: int | None = None,
        telemetry_max_age_days: float | None = None,
        engine_stats: dict[str, Any] | None = None,
        metrics_text: str | None = None,
    ) -> None:
        """Persist the given engine components — the same signature as
        :func:`repro.engine.state.save_state`, applied with the tier's
        consistency model (LWW per key, monotonic cost merge, hygiene
        caps enforced in the database).  One ``BEGIN IMMEDIATE``
        transaction, retried on lock contention."""
        plan_records = registry.plan_records() if registry is not None else None
        decision_records = None
        if cache is not None:
            decision_records = cache.to_records()
            if decision_cap_per_schema is not None:
                decision_records = cap_decision_records(
                    decision_records, decision_cap_per_schema
                )
        cost_cells = None
        dropped: set[tuple[str, str, str]] = set()
        if cost_model is not None:
            cost_cells = self._cost_deltas(cost_model)
            dropped = cost_model.consume_dropped()
        with self._lock:
            self._require_open()
            self._with_retry(
                "save",
                lambda: self._write_state(
                    plan_records=plan_records,
                    telemetry=telemetry,
                    telemetry_max_age_days=telemetry_max_age_days,
                    cost_cells=cost_cells,
                    cost_dropped=dropped,
                    cost_min_samples=(
                        cost_model.min_samples if cost_model is not None
                        else None
                    ),
                    decision_records=decision_records,
                    decision_cap_per_schema=decision_cap_per_schema,
                    scheduler=scheduler,
                    engine_stats=engine_stats,
                ),
            )
            if cost_model is not None:
                self.note_cost_baseline(cost_model)
        self.saves += 1
        if metrics_text is not None:
            _atomic_write_text(
                os.path.join(os.path.dirname(self.path) or ".", METRICS_FILE),
                metrics_text,
            )

    def _write_state(
        self,
        *,
        plan_records=None,
        telemetry: PlanTelemetry | None = None,
        telemetry_max_age_days: float | None = None,
        cost_cells=None,
        cost_dropped: set[tuple[str, str, str]] = frozenset(),
        cost_min_samples: int | None = None,
        decision_records=None,
        decision_cap_per_schema: int | None = None,
        scheduler: dict[str, Any] | None = None,
        engine_stats: dict[str, Any] | None = None,
        process: str | None = None,
        extra_meta: dict[str, str] | None = None,
    ) -> None:
        now = time.time()
        conn = self._conn
        conn.execute("BEGIN IMMEDIATE")
        try:
            if plan_records is not None:
                for fingerprint, (name, per_schema) in plan_records.items():
                    for signature, plan in per_schema.items():
                        conn.execute(
                            "INSERT INTO plans(fingerprint, signature, name, "
                            "plan, updated) VALUES(?, ?, ?, ?, ?) "
                            "ON CONFLICT(fingerprint, signature) DO UPDATE SET "
                            "name = excluded.name, plan = excluded.plan, "
                            "updated = excluded.updated",
                            (fingerprint, signature, name,
                             json.dumps(plan.to_dict(), sort_keys=True), now),
                        )
                        self.rows_written += 1

            if telemetry is not None:
                for key, stats in telemetry.items():
                    plan_record = telemetry.plan_record(key)
                    conn.execute(
                        "INSERT INTO telemetry(key, plan, stats, updated) "
                        "VALUES(?, ?, ?, ?) "
                        "ON CONFLICT(key) DO UPDATE SET plan = excluded.plan, "
                        "stats = excluded.stats, updated = excluded.updated",
                        (
                            key,
                            json.dumps(plan_record, sort_keys=True)
                            if plan_record is not None else None,
                            json.dumps(stats.to_dict(), sort_keys=True),
                            now,
                        ),
                    )
                    self.rows_written += 1
                if telemetry_max_age_days is not None:
                    # cross-process hygiene: rows no process refreshed
                    # within the window age out of the shared tier too
                    conn.execute(
                        "DELETE FROM telemetry WHERE updated < ?",
                        (now - telemetry_max_age_days * 86400.0,),
                    )

            if cost_cells is not None:
                for (signature, bucket, decider), (count, total, tick) in (
                    cost_cells.items()
                ):
                    conn.execute(
                        "INSERT INTO cost_cells(signature, bucket, decider, "
                        "count, total_ms, last_tick) VALUES(?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT(signature, bucket, decider) DO UPDATE SET "
                        "count = count + excluded.count, "
                        "total_ms = total_ms + excluded.total_ms, "
                        "last_tick = MAX(last_tick, excluded.last_tick)",
                        (signature, bucket, decider,
                         round(count, 4), round(total, 4), tick),
                    )
                    self.cells_merged += 1
                    self.rows_written += 1
            for signature, bucket, decider in sorted(cost_dropped):
                deleted = conn.execute(
                    "DELETE FROM cost_cells WHERE signature = ? AND "
                    "bucket = ? AND decider = ?",
                    (signature, bucket, decider),
                ).rowcount
                self.cells_deleted += max(deleted, 0)
                self._cost_baseline.pop((signature, bucket, decider), None)
            if cost_min_samples is not None:
                conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                    ("cost_min_samples", str(cost_min_samples)),
                )

            if decision_records is not None:
                touched_fingerprints = set()
                for key, record in decision_records:
                    qkey, fingerprint, bounds = (
                        str(key[0]), str(key[1]), str(key[2])
                    )
                    satisfiable = record.get("satisfiable")
                    conn.execute(
                        "INSERT INTO decisions(qkey, fingerprint, bounds, "
                        "satisfiable, method, reason, updated) "
                        "VALUES(?, ?, ?, ?, ?, ?, ?) "
                        "ON CONFLICT(qkey, fingerprint, bounds) DO UPDATE SET "
                        "satisfiable = excluded.satisfiable, "
                        "method = excluded.method, "
                        "reason = excluded.reason, "
                        "updated = excluded.updated",
                        (qkey, fingerprint, bounds,
                         None if satisfiable is None else int(satisfiable),
                         str(record.get("method", "")),
                         str(record.get("reason", "")), now),
                    )
                    touched_fingerprints.add(fingerprint)
                    self.rows_written += 1
                if decision_cap_per_schema is not None:
                    # enforce the per-schema cap on the *shared* table:
                    # newest rows win, same rule cap_decision_records
                    # applies to the JSON file
                    for fingerprint in sorted(touched_fingerprints):
                        conn.execute(
                            "DELETE FROM decisions WHERE fingerprint = ? AND "
                            "rowid NOT IN (SELECT rowid FROM decisions "
                            "WHERE fingerprint = ? "
                            "ORDER BY updated DESC, rowid DESC LIMIT ?)",
                            (fingerprint, fingerprint,
                             decision_cap_per_schema),
                        )

            if scheduler is not None:
                for name, value in scheduler.items():
                    conn.execute(
                        "INSERT INTO scheduler(name, value, updated) "
                        "VALUES(?, ?, ?) "
                        "ON CONFLICT(name) DO UPDATE SET "
                        "value = excluded.value, updated = excluded.updated",
                        (name, json.dumps(value), now),
                    )
                    self.rows_written += 1

            if engine_stats is not None:
                identity = process if process is not None else self._identity()
                conn.execute(
                    "INSERT INTO engine_stats(process, stats, updated) "
                    "VALUES(?, ?, ?) "
                    "ON CONFLICT(process) DO UPDATE SET "
                    "stats = excluded.stats, updated = excluded.updated",
                    (identity, json.dumps(engine_stats, sort_keys=True), now),
                )
                self.rows_written += 1

            for key, value in (extra_meta or {}).items():
                conn.execute(
                    "INSERT OR REPLACE INTO meta(key, value) VALUES(?, ?)",
                    (key, value),
                )
            conn.execute("COMMIT")
        except BaseException:
            if conn.in_transaction:
                conn.execute("ROLLBACK")
            raise

    @staticmethod
    def _identity() -> str:
        return f"{socket.gethostname()}:{os.getpid()}"

    # -- observability -------------------------------------------------------
    def register_metrics(self, registry) -> None:
        for name, attr, help_text in (
            ("loads", "loads", "full state loads from the shared tier"),
            ("saves", "saves", "state snapshots written to the shared tier"),
            ("rows_read", "rows_read", "rows read from the shared tier"),
            ("rows_written", "rows_written",
             "rows upserted into the shared tier"),
            ("cells_merged", "cells_merged",
             "cost-sample deltas merged into shared cells"),
            ("cells_deleted", "cells_deleted",
             "decay-dropped cost cells deleted from the shared tier"),
            ("lock_retries", "lock_retries",
             "write transactions retried on lock contention"),
            ("migrated_records", "migrated_records",
             "records imported from a legacy JSON state dir"),
        ):
            registry.counter(f"repro_tier_{name}_total", help_text).inc(
                getattr(self, attr)
            )
