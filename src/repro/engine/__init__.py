"""Batch decision engine: serve many queries per schema.

The paper's deciders answer one ``(query, DTD)`` question at a time; this
package amortizes their setup across production-scale workloads:

* :mod:`repro.engine.registry` — :class:`SchemaRegistry` fingerprints
  DTDs and precomputes per-schema artifacts (parsed model, dependency
  graph, Section-6 classification, Proposition 3.3 normal form) once;
* :mod:`repro.engine.cache` — :class:`DecisionCache`, a bounded LRU over
  canonical query form × schema fingerprint;
* :mod:`repro.engine.batch` — :class:`BatchEngine` runs ``(query,
  schema_ref)`` job streams, inline for PTIME fragments and on a process
  pool for EXPTIME/NEXPTIME ones;
* :mod:`repro.engine.executors` — the execution layer: an
  :class:`Executor` abstraction over :class:`InlineExecutor` and
  :class:`PersistentPoolExecutor`, whose long-lived worker lanes cache
  schemas and prepared contexts (:class:`WorkerRuntime`) across chunks
  with schema-fingerprint affinity routing;
* :mod:`repro.engine.jobs` — JSONL serialization driving ``python -m
  repro batch``;
* :mod:`repro.engine.server` — :class:`EngineServer`, the asyncio daemon
  behind ``python -m repro serve``: one shared engine multiplexed across
  concurrent JSONL connections, with admission control and snapshots;
* :mod:`repro.engine.statetier` — :class:`StateTier`, the concurrent-safe
  SQLite (WAL) replacement for the JSON state snapshot: N processes load
  and save simultaneously, cost samples merge instead of overwriting;
* :mod:`repro.engine.router` — :class:`EngineRouter`, the multi-process
  front door behind ``python -m repro route``: shards JSONL jobs across
  N engine processes by schema fingerprint and warms them from the tier.
"""

from repro.engine.batch import (
    BatchEngine,
    BatchReport,
    EngineStats,
    Job,
    JobResult,
    PlanGroup,
    plan_route,
)
from repro.engine.cache import CachedDecision, DecisionCache, decision_key, decision_key_for
from repro.engine.executors import (
    ChunkOutcome,
    ChunkTask,
    Executor,
    ExecutorStats,
    InlineExecutor,
    PersistentPoolExecutor,
    WorkerRuntime,
)
from repro.engine.jobs import (
    read_jobs,
    read_jobs_file,
    write_jobs_file,
    write_results,
    write_results_file,
)
from repro.engine.registry import SchemaArtifacts, SchemaRegistry, schema_fingerprint
from repro.engine.router import EngineRouter, RouterStats, pick_shard
from repro.engine.server import EngineServer, ServerStats
from repro.engine.state import PersistedState, load_state, save_state
from repro.engine.statetier import StateTier, resolve_tier_path

__all__ = [
    "BatchEngine", "BatchReport", "EngineStats", "Job", "JobResult",
    "PlanGroup", "plan_route",
    "CachedDecision", "DecisionCache", "decision_key", "decision_key_for",
    "ChunkOutcome", "ChunkTask", "Executor", "ExecutorStats",
    "InlineExecutor", "PersistentPoolExecutor", "WorkerRuntime",
    "SchemaArtifacts", "SchemaRegistry", "schema_fingerprint",
    "EngineServer", "ServerStats",
    "EngineRouter", "RouterStats", "pick_shard",
    "PersistedState", "load_state", "save_state",
    "StateTier", "resolve_tier_path",
    "read_jobs", "read_jobs_file", "write_jobs_file",
    "write_results", "write_results_file",
]
