"""XML trees: finite node-labeled ordered trees with attribute values.

Nodes carry a label (element type), an ordered child list, and a mapping
from attribute names to string values.  Navigation (parent, siblings,
descendants) is precomputed on construction so the XPath evaluator and the
streaming encoder can move in all four directions cheaply.

Trees are mutable only through :meth:`Node.append`; calling
:meth:`XMLTree.freeze` (done automatically by :func:`tree`) fixes parent and
sibling links.  The :func:`tree` convenience constructor builds a whole tree
from nested tuples, which keeps tests and encodings readable:

>>> doc = tree(("r", [("X", [("T", [])]), ("X", [("F", [])])]))
>>> [child.label for child in doc.root.children]
['X', 'X']
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(eq=False)
class Node:
    """A single element node."""

    label: str
    children: list["Node"] = field(default_factory=list)
    attrs: dict[str, str] = field(default_factory=dict)
    parent: "Node | None" = field(default=None, repr=False)
    index_in_parent: int = field(default=-1, repr=False)
    node_id: int = field(default=-1, repr=False)
    depth: int = field(default=0, repr=False)

    def append(self, child: "Node") -> "Node":
        self.children.append(child)
        return child

    # -- navigation ---------------------------------------------------------
    def is_root(self) -> bool:
        return self.parent is None

    @property
    def left_sibling(self) -> "Node | None":
        if self.parent is None or self.index_in_parent == 0:
            return None
        return self.parent.children[self.index_in_parent - 1]

    @property
    def right_sibling(self) -> "Node | None":
        if self.parent is None:
            return None
        siblings = self.parent.children
        if self.index_in_parent + 1 >= len(siblings):
            return None
        return siblings[self.index_in_parent + 1]

    def left_siblings(self) -> Iterator["Node"]:
        """Self, then siblings strictly to the left, nearest first
        (the reflexive ``←*`` axis)."""
        yield self
        if self.parent is not None:
            for index in range(self.index_in_parent - 1, -1, -1):
                yield self.parent.children[index]

    def right_siblings(self) -> Iterator["Node"]:
        """Self, then siblings strictly to the right, nearest first
        (the reflexive ``→*`` axis)."""
        yield self
        if self.parent is not None:
            for index in range(self.index_in_parent + 1, len(self.parent.children)):
                yield self.parent.children[index]

    def descendants_or_self(self) -> Iterator["Node"]:
        """Pre-order traversal of the subtree rooted here (``↓*``)."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def ancestors_or_self(self) -> Iterator["Node"]:
        """Self, then each ancestor up to the root (``↑*``)."""
        node: Node | None = self
        while node is not None:
            yield node
            node = node.parent

    def child_labels(self) -> tuple[str, ...]:
        return tuple(child.label for child in self.children)

    def subtree_size(self) -> int:
        return sum(1 for _ in self.descendants_or_self())

    def path_from_root(self) -> tuple[int, ...]:
        """Position indices from the root down to this node (stable address)."""
        address: list[int] = []
        node: Node = self
        while node.parent is not None:
            address.append(node.index_in_parent)
            node = node.parent
        return tuple(reversed(address))

    def pretty(self, indent: int = 0) -> str:
        attr_text = ""
        if self.attrs:
            rendered = ", ".join(f"@{k}={v!r}" for k, v in sorted(self.attrs.items()))
            attr_text = f" [{rendered}]"
        lines = [f"{'  ' * indent}{self.label}{attr_text}"]
        lines.extend(child.pretty(indent + 1) for child in self.children)
        return "\n".join(lines)


class XMLTree:
    """A rooted tree with frozen navigation links and node numbering."""

    def __init__(self, root: Node):
        self.root = root
        self._nodes: list[Node] = []
        self.freeze()

    def freeze(self) -> None:
        """(Re)compute parent links, sibling indices, depths and node ids.

        Call again after structural edits made via ``Node.append``.
        """
        self._nodes = []
        stack: list[tuple[Node, Node | None, int, int]] = [(self.root, None, 0, 0)]
        while stack:
            node, parent, index, depth = stack.pop()
            node.parent = parent
            node.index_in_parent = index
            node.depth = depth
            node.node_id = len(self._nodes)
            self._nodes.append(node)
            for child_index, child in enumerate(reversed(node.children)):
                real_index = len(node.children) - 1 - child_index
                stack.append((child, node, real_index, depth + 1))

    # -- iteration -----------------------------------------------------------
    def nodes(self) -> Sequence[Node]:
        """All nodes in document (pre-) order."""
        return self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def depth(self) -> int:
        """Maximum number of edges from root to any node."""
        return max(node.depth for node in self._nodes)

    def labels_used(self) -> frozenset[str]:
        return frozenset(node.label for node in self._nodes)

    def find(self, label: str) -> Node | None:
        """First node (document order) with the given label."""
        for node in self._nodes:
            if node.label == label:
                return node
        return None

    def node_at(self, address: tuple[int, ...]) -> Node:
        node = self.root
        for index in address:
            node = node.children[index]
        return node

    def pretty(self) -> str:
        return self.root.pretty()

    def copy(self) -> "XMLTree":
        return XMLTree(_copy_node(self.root))


def _copy_node(node: Node) -> Node:
    return Node(
        label=node.label,
        children=[_copy_node(child) for child in node.children],
        attrs=dict(node.attrs),
    )


NodeSpec = tuple  # (label, children) or (label, children, attrs)


def node(spec: NodeSpec) -> Node:
    """Build a :class:`Node` from nested tuples.

    A spec is ``(label, children)`` or ``(label, children, attrs)`` where
    ``children`` is a sequence of specs and ``attrs`` a mapping.
    """
    if len(spec) == 2:
        label, children = spec
        attrs: Mapping[str, str] = {}
    elif len(spec) == 3:
        label, children, attrs = spec
    else:
        raise ValueError(f"bad node spec: {spec!r}")
    return Node(
        label=label,
        children=[node(child) for child in children],
        attrs=dict(attrs),
    )


def tree(spec: NodeSpec) -> XMLTree:
    """Build a frozen :class:`XMLTree` from nested tuples (see :func:`node`)."""
    return XMLTree(node(spec))


def chain(labels: Iterable[str], attrs_last: Mapping[str, str] | None = None) -> Node:
    """A single chain of nodes ``labels[0]/labels[1]/.../labels[-1]``;
    useful for witness-path constructions."""
    labels = list(labels)
    if not labels:
        raise ValueError("chain requires at least one label")
    current = Node(label=labels[-1], attrs=dict(attrs_last or {}))
    for label in reversed(labels[:-1]):
        current = Node(label=label, children=[current])
    return current
