"""Streamed tag encodings of trees (Section 7.3.1).

``stream(T)`` is the word over ``XML(Σ) = {<A>, </A> | A ∈ Σ}`` obtained by
a document-order traversal.  ``stream(T, m)`` additionally marks the opening
tag of the selected node ``m`` with ``true`` and all other opening tags with
``false`` — the alphabet ``XML_sel(Σ)`` over which two-way alternating
selection automata run.

Letters are represented as tuples:

* ``("open", label, selected: bool)`` for ``(<A>, true/false)``;
* ``("close", label)`` for ``</A>``.

For plain (non-selection) streams the ``selected`` flag is ``False``
everywhere, so one representation serves both alphabets.
"""

from __future__ import annotations

from typing import Iterator

from repro.xmltree.model import Node, XMLTree

OpenLetter = tuple[str, str, bool]
CloseLetter = tuple[str, str]
Letter = OpenLetter | CloseLetter


def stream(tree: XMLTree) -> list[Letter]:
    """``stream(T)``: the streamed document with no selected node."""
    return list(_stream_node(tree.root, None))


def stream_selected(tree: XMLTree, selected: Node) -> list[Letter]:
    """``stream(T, m)``: opening tag of ``selected`` marked ``true``."""
    return list(_stream_node(tree.root, selected))


def open_position(tree: XMLTree, target: Node) -> int:
    """``pos(n)``: index of the opening tag of ``target`` in ``stream(T)``."""
    position = 0
    for node, letter_kind in _events(tree.root):
        if letter_kind == "open" and node is target:
            return position
        position += 1
    raise ValueError("node does not belong to this tree")


def node_of_position(tree: XMLTree, position: int) -> tuple[Node, str]:
    """Inverse of the stream encoding: the node and event kind ('open' or
    'close') at stream index ``position``."""
    for index, (node, kind) in enumerate(_events(tree.root)):
        if index == position:
            return node, kind
    raise IndexError(position)


def _stream_node(node: Node, selected: Node | None) -> Iterator[Letter]:
    yield ("open", node.label, node is selected)
    for child in node.children:
        yield from _stream_node(child, selected)
    yield ("close", node.label)


def _events(node: Node) -> Iterator[tuple[Node, str]]:
    yield (node, "open")
    for child in node.children:
        yield from _events(child)
    yield (node, "close")
