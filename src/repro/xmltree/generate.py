"""Generating conforming trees.

* :func:`minimal_tree` — a smallest-depth completion of an element type,
  used whenever the paper "expands the tree into a finite XML tree
  conforming to D" (e.g. the `Tree(p, D)` construction of Theorem 4.1);
* :func:`random_tree` — random conforming trees for property tests;
* :func:`complete_random_tree` / :func:`complete_minimal` — expand the
  frontier of a partially built tree until it conforms.

Attribute values are filled from a configurable pool so generated trees
always carry exactly the attributes the DTD requires.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.dtd.model import DTD
from repro.errors import DTDError
from repro.regex.ast import Regex
from repro.regex.ops import cached_nfa, enumerate_words, shortest_word
from repro.xmltree.model import Node, XMLTree


def _fill_attrs(node: Node, dtd: DTD, value: Callable[[str, str], str]) -> None:
    for attr in sorted(dtd.attrs_of(node.label)):
        if attr not in node.attrs:
            node.attrs[attr] = value(node.label, attr)


def minimal_tree(dtd: DTD, root_type: str | None = None) -> XMLTree:
    """A conforming tree of minimal depth rooted at ``root_type``
    (default: the DTD's root).  Raises :class:`DTDError` if the type does
    not terminate."""
    dtd.require_terminating()
    label = dtd.root if root_type is None else label_checked(dtd, root_type)
    return XMLTree(_minimal_node(dtd, label))


def label_checked(dtd: DTD, label: str) -> str:
    if label not in dtd.element_types:
        raise DTDError(f"unknown element type: {label}")
    return label


def _min_expansion_words(dtd: DTD) -> dict[str, tuple[str, ...]]:
    """For each element type, a children word minimizing completion depth.

    Computed by a Dijkstra-like relaxation on "depth needed to terminate".
    """
    depth: dict[str, int] = {}
    word: dict[str, tuple[str, ...]] = {}
    changed = True
    while changed:
        changed = False
        for element_type in dtd.element_types:
            best = _best_word(dtd.production(element_type), depth)
            if best is None:
                continue
            candidate_word, candidate_depth = best
            if element_type not in depth or candidate_depth < depth[element_type]:
                depth[element_type] = candidate_depth
                word[element_type] = candidate_word
                changed = True
    missing = dtd.element_types - set(depth)
    if missing:
        raise DTDError(f"non-terminating element types: {sorted(missing)}")
    return word


def _best_word(production: Regex, depth: dict[str, int]) -> tuple[tuple[str, ...], int] | None:
    """A word over already-terminating symbols minimizing
    ``1 + max(depth of symbols)`` (empty word gives depth 0); Dijkstra over
    the Glushkov automaton with the max-depth cost."""
    nfa = cached_nfa(production)
    if nfa.nullable:
        return (), 0
    best: dict[int, tuple[int, tuple[str, ...]]] = {0: (0, ())}
    frontier = [0]
    result: tuple[tuple[str, ...], int] | None = None
    while frontier:
        frontier.sort(key=lambda state: best[state][0])
        state = frontier.pop(0)
        cost, word = best[state]
        if result is not None and cost >= result[1]:
            break
        for succ in nfa.successors(state):
            symbol = nfa.symbols[succ]
            assert symbol is not None
            if symbol not in depth:
                continue
            succ_cost = max(cost, 1 + depth[symbol])
            if succ not in best or succ_cost < best[succ][0] or (
                succ_cost == best[succ][0] and len(word) + 1 < len(best[succ][1])
            ):
                best[succ] = (succ_cost, word + (symbol,))
                if succ not in frontier:
                    frontier.append(succ)
                if nfa.is_accepting(succ):
                    candidate = (best[succ][1], succ_cost)
                    if result is None or succ_cost < result[1]:
                        result = candidate
    return result


# Keyed by id(dtd) with the DTD pinned in the value so the id cannot be
# recycled by the allocator while the cache entry lives.
_MIN_WORDS_CACHE: dict[int, tuple[DTD, dict[str, tuple[str, ...]]]] = {}


def _min_words(dtd: DTD) -> dict[str, tuple[str, ...]]:
    key = id(dtd)
    entry = _MIN_WORDS_CACHE.get(key)
    if entry is None or entry[0] is not dtd:
        entry = (dtd, _min_expansion_words(dtd))
        _MIN_WORDS_CACHE[key] = entry
    return entry[1]


def _minimal_node(dtd: DTD, label: str) -> Node:
    words = _min_words(dtd)
    node = Node(label=label)
    _fill_attrs(node, dtd, lambda _label, attr: f"{attr}0")
    for child_label in words[label]:
        node.append(_minimal_node(dtd, child_label))
    return node


def minimal_node(dtd: DTD, label: str) -> Node:
    """A minimal-depth conforming subtree rooted at ``label`` (public
    counterpart of the internal builder, reused by witness constructions)."""
    return _minimal_node(dtd, label)


def complete_minimal(root: Node, dtd: DTD) -> XMLTree:
    """Expand every node of a partially built tree so it conforms: nodes
    whose current children word is not in the content model get a minimal
    conforming children word appended where possible, and leaves are
    expanded minimally.

    The builder is intentionally simple: it assumes each prefilled node's
    children word is a *prefix* of some word of the content model (true for
    all the paper's witness constructions) and completes it by automaton
    search; it raises :class:`DTDError` otherwise.
    """
    from repro.regex.ops import matches

    def complete(node: Node) -> None:
        _fill_attrs(node, dtd, lambda _label, attr: f"{attr}0")
        production = dtd.production(node.label)
        word = node.child_labels()
        if not matches(production, word):
            suffix = _completion_suffix(production, word, dtd)
            if suffix is None:
                raise DTDError(
                    f"children {list(word)} of {node.label!r} cannot be completed "
                    f"to a word of {production}"
                )
            for child_label in suffix:
                node.append(_minimal_node(dtd, child_label))
        for child in node.children:
            complete(child)

    complete(root)
    tree = XMLTree(root)
    return tree


def _completion_suffix(
    production: Regex, prefix: tuple[str, ...], dtd: DTD
) -> tuple[str, ...] | None:
    """A shortest suffix ``s`` with ``prefix + s`` in the content model."""
    nfa = cached_nfa(production)
    current = {0}
    for letter in prefix:
        nxt: set[int] = set()
        for state in current:
            for succ in nfa.successors(state):
                if nfa.symbols[succ] == letter:
                    nxt.add(succ)
        if not nxt:
            return None
        current = nxt
    # BFS to an accepting state.
    from collections import deque

    queue: deque[tuple[int, tuple[str, ...]]] = deque((state, ()) for state in current)
    seen = set(current)
    while queue:
        state, suffix = queue.popleft()
        if nfa.is_accepting(state):
            return suffix
        for succ in nfa.successors(state):
            if succ in seen:
                continue
            symbol = nfa.symbols[succ]
            assert symbol is not None
            seen.add(succ)
            queue.append((succ, suffix + (symbol,)))
    return None


def random_tree(
    dtd: DTD,
    rng: random.Random | None = None,
    max_nodes: int = 200,
    max_word_length: int = 4,
    attr_values: tuple[str, ...] = ("0", "1", "2"),
) -> XMLTree:
    """A random conforming tree.

    Children words are sampled uniformly from the (bounded) enumeration of
    each content model, falling back to a minimal word when the node budget
    runs low so generation always terminates.
    """
    rng = rng or random.Random()
    dtd.require_terminating()
    budget = [max_nodes]

    def build(label: str) -> Node:
        budget[0] -= 1
        node = Node(label=label)
        _fill_attrs(node, dtd, lambda _label, attr: rng.choice(attr_values))
        production = dtd.production(label)
        if budget[0] <= 0:
            word = _min_words(dtd)[label]
        else:
            options = list(enumerate_words(production, max_word_length, max_words=12))
            if not options:
                options = [shortest_word(production)]
            word = rng.choice(options)
            if budget[0] - len(word) <= 0:
                word = _min_words(dtd)[label]
        for child_label in word:
            node.append(build(child_label))
        return node

    return XMLTree(build(dtd.root))


def complete_random_tree(
    root: Node, dtd: DTD, rng: random.Random | None = None, **kwargs
) -> XMLTree:
    """Complete a partial tree, then keep it conforming (randomized variant
    currently defers to :func:`complete_minimal`; the hook exists so
    workloads can diversify completions later)."""
    del rng, kwargs
    return complete_minimal(root, dtd)
