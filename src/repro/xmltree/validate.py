"""Conformance ``T ⊨ D`` (Section 2.1).

A tree satisfies a DTD iff (1) the root bears the root type, (2) every node
bears an element type of the DTD, (3) every node's children-label word
belongs to the language of its production, and (4) every node carries
exactly the attributes ``R(label)`` (each with some value; values are
strings and uniqueness per node is structural).
"""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.regex.ops import matches
from repro.xmltree.model import Node, XMLTree


def violations(tree: XMLTree, dtd: DTD, limit: int | None = 10) -> list[str]:
    """Human-readable list of conformance violations (empty iff ``T ⊨ D``).

    ``limit`` caps the number of reported problems (``None`` for all).
    """
    problems: list[str] = []

    def report(message: str) -> bool:
        problems.append(message)
        return limit is not None and len(problems) >= limit

    if tree.root.label != dtd.root:
        if report(f"root is {tree.root.label!r}, expected {dtd.root!r}"):
            return problems

    known = dtd.element_types
    for node in tree.nodes():
        if node.label not in known:
            if report(f"node {node.path_from_root()} has unknown type {node.label!r}"):
                return problems
            continue
        production = dtd.production(node.label)
        word = node.child_labels()
        if not matches(production, word):
            if report(
                f"children of {node.label!r} at {node.path_from_root()} are "
                f"{list(word)}, not in L({production})"
            ):
                return problems
        expected_attrs = dtd.attrs_of(node.label)
        actual_attrs = frozenset(node.attrs)
        if expected_attrs != actual_attrs:
            missing = sorted(expected_attrs - actual_attrs)
            extra = sorted(actual_attrs - expected_attrs)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extra:
                detail.append(f"unexpected {extra}")
            if report(
                f"attributes of {node.label!r} at {node.path_from_root()}: "
                + ", ".join(detail)
            ):
                return problems
    return problems


def conforms(tree: XMLTree, dtd: DTD) -> bool:
    """``T ⊨ D``."""
    return not violations(tree, dtd, limit=1)


def node_conforms_locally(node: Node, dtd: DTD) -> bool:
    """Local check for one node: label known, children word in the content
    model, attributes exact.  Used by incremental tree builders."""
    if node.label not in dtd.element_types:
        return False
    if not matches(dtd.production(node.label), node.child_labels()):
        return False
    return frozenset(node.attrs) == dtd.attrs_of(node.label)
