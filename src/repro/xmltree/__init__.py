"""Ordered, labeled, attributed trees — the paper's XML tree model.

:mod:`repro.xmltree.model` defines the tree structure, navigation and
construction helpers; :mod:`repro.xmltree.validate` implements conformance
``T ⊨ D``; :mod:`repro.xmltree.stream` produces the streamed tag encodings
``stream(T)`` / ``stream(T, m)`` used by the two-way automata of Section 7;
:mod:`repro.xmltree.generate` builds minimal completions and random
conforming trees.
"""

from repro.xmltree.model import Node, XMLTree, tree
from repro.xmltree.validate import conforms, violations
from repro.xmltree.stream import stream, stream_selected
from repro.xmltree.generate import (
    complete_random_tree,
    minimal_tree,
    random_tree,
)

__all__ = [
    "Node", "XMLTree", "tree",
    "conforms", "violations",
    "stream", "stream_selected",
    "minimal_tree", "random_tree", "complete_random_tree",
]
