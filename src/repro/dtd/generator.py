"""Random DTD generation for workloads and property tests.

The generator guarantees every element type terminates and is reachable
from the root, so generated DTDs satisfy the paper's standing assumptions.
Shape knobs control the Section 6 classes: pass ``allow_union=False`` for
disjunction-free DTDs, ``allow_recursion=False`` for nonrecursive ones,
``allow_star=False`` for no-star ones.
"""

from __future__ import annotations

import random

from repro.dtd.model import DTD
from repro.dtd.properties import terminating_types
from repro.regex import ast as rx


def random_dtd(
    rng: random.Random | None = None,
    n_types: int = 6,
    max_parts: int = 3,
    allow_union: bool = True,
    allow_star: bool = True,
    allow_recursion: bool = True,
    attribute_names: tuple[str, ...] = (),
    attr_probability: float = 0.5,
) -> DTD:
    """Generate a random well-formed DTD with ``n_types`` element types.

    Types are named ``r, E1, E2, ...``; the dependency structure is layered
    (type ``i`` references types ``> i``) unless ``allow_recursion``, in
    which case back-edges are added and termination is re-established by
    wrapping offending back-references in ``?``/``*``.
    """
    rng = rng or random.Random()
    names = ["r"] + [f"E{i}" for i in range(1, n_types)]
    productions: dict[str, rx.Regex] = {}

    for index, name in enumerate(names):
        later = names[index + 1:]
        if not later:
            productions[name] = rx.Epsilon()
            continue
        n_parts = rng.randint(1, max_parts)
        parts: list[rx.Regex] = []
        for _ in range(n_parts):
            target_pool = later
            if allow_recursion and rng.random() < 0.25:
                target_pool = names  # may create a cycle
            target = rx.sym(rng.choice(target_pool))
            roll = rng.random()
            part: rx.Regex = target
            if allow_star and roll < 0.3:
                part = rx.star(target)
            elif allow_union and roll < 0.5:
                # e? counts as disjunction (e + ε), so it needs allow_union
                part = rx.Optional(target)
            parts.append(part)
        if allow_union and len(parts) >= 2 and rng.random() < 0.4:
            productions[name] = rx.union(*parts)
        else:
            productions[name] = rx.concat(*parts) if len(parts) > 1 else parts[0]

    dtd = _repair_termination(
        names, productions, allow_union=allow_union, allow_star=allow_star
    )

    attributes: dict[str, frozenset[str]] = {}
    if attribute_names:
        for name in names:
            chosen = frozenset(
                attr for attr in attribute_names if rng.random() < attr_probability
            )
            if chosen:
                attributes[name] = chosen
    return DTD(root="r", productions=dtd.productions, attributes=attributes)


def _repair_termination(
    names: list[str],
    productions: dict[str, rx.Regex],
    allow_union: bool = True,
    allow_star: bool = True,
) -> DTD:
    """Make every type terminating by weakening offending references.

    Non-terminating types have some reference chain that can never bottom
    out; wrapping every reference to a non-terminating type in ``?`` (or
    ``*``, or dropping it, depending on which constructs are allowed)
    makes the empty choice available, which terminates everything while
    keeping the overall shape.
    """
    candidate = DTD(root=names[0], productions=productions)
    bad = candidate.element_types - terminating_types(candidate)
    if not bad:
        return candidate

    def soften(symbol: rx.Regex) -> rx.Regex:
        if allow_union:
            return rx.Optional(symbol)
        if allow_star:
            return rx.star(symbol)
        return rx.Epsilon()

    def weaken(node: rx.Regex) -> rx.Regex:
        if isinstance(node, rx.Symbol) and node.name in bad:
            return soften(node)
        if isinstance(node, rx.Concat):
            return rx.concat(*[weaken(part) for part in node.parts])
        if isinstance(node, rx.Union):
            return rx.union(*[weaken(part) for part in node.parts])
        if isinstance(node, rx.Star):
            return rx.star(weaken(node.inner))
        if isinstance(node, rx.Optional):
            inner = weaken(node.inner)
            return inner if isinstance(inner, (rx.Optional, rx.Star)) else rx.Optional(inner)
        return node

    repaired = {name: weaken(production) for name, production in productions.items()}
    result = DTD(root=names[0], productions=repaired)
    missing = result.element_types - terminating_types(result)
    if missing:
        # pathological corner: give the offenders empty productions
        final = dict(repaired)
        for name in missing:
            final[name] = rx.Epsilon()
        result = DTD(root=names[0], productions=final)
    return result
