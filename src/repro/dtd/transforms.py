"""DTD-level reductions from the paper.

* :func:`universal_dtds` — Proposition 3.1: the family ``D_p`` reducing
  DTD-less satisfiability to ``SAT(X)``;
* :func:`eliminate_recursion_in_query` — Proposition 6.1: under
  nonrecursive DTDs, replace ``↓*`` by ``ε ∪ ↓ ∪ ... ∪ ↓^k`` (and ``↑*``
  dually), with ``k`` the DTD's depth bound;
* :func:`eliminate_star` — Proposition 6.4: replace ``e*`` by
  ``ε + e + ... + e^g`` (sound for fixed nonrecursive DTDs once ``g``
  exceeds the bounded-width constant of Claim 6.5);
* :func:`eliminate_disjunction` — Corollary 6.10: turn
  ``A -> B1 + ... + Bk`` into ``A -> B1*, ..., Bk*`` guarded by the
  qualifier ``Q_A`` stating every ``A`` node uses exactly one alternative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dtd.model import DTD
from repro.dtd.properties import max_document_depth
from repro.regex import ast as rx
from repro.xpath import ast as xp
from repro.xpath.ast import labels_mentioned, attrs_mentioned


def universal_dtds(query: xp.Path) -> list[DTD]:
    """Proposition 3.1: the DTDs ``D_p`` such that ``p`` is satisfiable by
    some tree iff ``(p, D)`` is satisfiable for some ``D`` in the family.

    ``Ele_p`` is the labels of ``p`` plus a fresh label ``X``; every type's
    production is ``(A1 + ... + An)*`` over all of ``Ele_p``; every type
    carries all attributes of ``p``; the root ranges over ``Ele_p``.
    """
    labels = sorted(labels_mentioned(query))
    fresh = "X"
    while fresh in labels:
        fresh += "_"
    element_types = labels + [fresh]
    body = rx.star(rx.union(*[rx.sym(name) for name in element_types]))
    attrs = frozenset(attrs_mentioned(query))
    productions = {name: body for name in element_types}
    attributes = {name: attrs for name in element_types}
    return [
        DTD(root=name, productions=productions, attributes=attributes)
        for name in element_types
    ]


def eliminate_recursion_in_query(query: xp.Path, dtd: DTD) -> xp.Path:
    """Proposition 6.1: for a *nonrecursive* ``dtd``, an equivalent query
    without ``↓*``/``↑*`` obtained by bounded unrolling.

    Raises ``ValueError`` for recursive DTDs (the depth is unbounded).
    """
    depth = max_document_depth(dtd)
    return _unroll(query, depth)


def _unroll(path: xp.Path, depth: int) -> xp.Path:
    if isinstance(path, xp.DescOrSelf):
        return _power_union(xp.Wildcard(), depth)
    if isinstance(path, xp.AncOrSelf):
        return _power_union(xp.Parent(), depth)
    if isinstance(path, xp.Seq):
        return xp.Seq(_unroll(path.left, depth), _unroll(path.right, depth))
    if isinstance(path, xp.Union):
        return xp.Union(_unroll(path.left, depth), _unroll(path.right, depth))
    if isinstance(path, xp.Filter):
        return xp.Filter(_unroll(path.path, depth), _unroll_qualifier(path.qualifier, depth))
    return path


def _unroll_qualifier(qualifier: xp.Qualifier, depth: int) -> xp.Qualifier:
    if isinstance(qualifier, xp.PathExists):
        return xp.PathExists(_unroll(qualifier.path, depth))
    if isinstance(qualifier, xp.AttrConstCmp):
        return xp.AttrConstCmp(
            _unroll(qualifier.path, depth), qualifier.attr, qualifier.op, qualifier.value
        )
    if isinstance(qualifier, xp.AttrAttrCmp):
        return xp.AttrAttrCmp(
            _unroll(qualifier.left_path, depth),
            qualifier.left_attr,
            qualifier.op,
            _unroll(qualifier.right_path, depth),
            qualifier.right_attr,
        )
    if isinstance(qualifier, xp.And):
        return xp.And(
            _unroll_qualifier(qualifier.left, depth), _unroll_qualifier(qualifier.right, depth)
        )
    if isinstance(qualifier, xp.Or):
        return xp.Or(
            _unroll_qualifier(qualifier.left, depth), _unroll_qualifier(qualifier.right, depth)
        )
    if isinstance(qualifier, xp.Not):
        return xp.Not(_unroll_qualifier(qualifier.inner, depth))
    return qualifier


def _power_union(step: xp.Path, depth: int) -> xp.Path:
    """``ε ∪ step ∪ step² ∪ ... ∪ step^depth``."""
    options: list[xp.Path] = [xp.Empty()]
    for power in range(1, depth + 1):
        options.append(xp.seq_of(*([step] * power)))
    return xp.union_of(*options)


def eliminate_star(dtd: DTD, repetitions: int) -> DTD:
    """Proposition 6.4: replace every ``e*`` with
    ``ε + e + e,e + ... + e^repetitions``.

    Conforming trees of the result conform to the input DTD; the converse
    holds once ``repetitions`` reaches the bounded-width constant ``g`` of
    Claim 6.5 (callers choose ``repetitions`` explicitly because the
    paper's ``g`` is non-constructive).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be at least 1")

    def expand(node: rx.Regex) -> rx.Regex:
        if isinstance(node, rx.Star):
            inner = expand(node.inner)
            powers: list[rx.Regex] = [rx.Epsilon()]
            for power in range(1, repetitions + 1):
                powers.append(rx.concat(*([inner] * power)))
            return rx.union(*powers)
        if isinstance(node, rx.Optional):
            return rx.Optional(expand(node.inner))
        if isinstance(node, rx.Concat):
            return rx.concat(*[expand(part) for part in node.parts])
        if isinstance(node, rx.Union):
            return rx.union(*[expand(part) for part in node.parts])
        return node

    return DTD(
        root=dtd.root,
        productions={name: expand(p) for name, p in dtd.productions.items()},
        attributes=dtd.attributes,
    )


@dataclass(frozen=True)
class DisjunctionFreeResult:
    """Result of :func:`eliminate_disjunction`: the disjunction-free DTD and
    the guard qualifier to conjoin at the root."""

    dtd: DTD
    guard: xp.Qualifier | None

    def guard_query(self, query: xp.Path) -> xp.Path:
        """``ε[guard]/p`` — the query to use against the new DTD."""
        if self.guard is None:
            return query
        return xp.Seq(xp.Filter(xp.Empty(), self.guard), query)


def eliminate_disjunction(dtd: DTD) -> DisjunctionFreeResult:
    """Corollary 6.10: rewrite ``A -> B1 + ... + Bk`` (normalized
    disjunctions) into ``A -> B1*, ..., Bk*`` and emit the guard

    ``Q_A = ¬ **/ A [ ¬(B1 ∨ ... ∨ Bk) ∨ ⋁_{i<j} (Bi ∧ Bj) ]``

    stating that every ``A`` element has children of exactly one
    alternative.  Only normalized DTDs are handled (normalize first);
    non-disjunctive productions pass through unchanged.
    """
    guards: list[xp.Qualifier] = []
    productions: dict[str, rx.Regex] = {}
    for name in sorted(dtd.element_types):
        production = dtd.production(name)
        if isinstance(production, rx.Union) and all(
            isinstance(part, rx.Symbol) for part in production.parts
        ):
            alternatives = [part.name for part in production.parts]  # type: ignore[union-attr]
            productions[name] = rx.concat(
                *[rx.star(rx.sym(alternative)) for alternative in alternatives]
            )
            guards.append(_exactly_one_alternative(name, alternatives))
        elif isinstance(production, rx.Optional) and isinstance(production.inner, rx.Symbol):
            # e? is e + ε: allowed zero-or-one occurrences
            inner = production.inner.name
            productions[name] = rx.star(rx.sym(inner))
            guards.append(_at_most_one(name, inner))
        else:
            if production.uses_union:
                raise ValueError(
                    f"production of {name!r} is not normalized; call normalize() first"
                )
            productions[name] = production
    new_dtd = DTD(root=dtd.root, productions=productions, attributes=dtd.attributes)
    guard = xp.and_of(*guards) if guards else None
    return DisjunctionFreeResult(dtd=new_dtd, guard=guard)


def _exactly_one_alternative(name: str, alternatives: list[str]) -> xp.Qualifier:
    none_present = xp.Not(
        xp.or_of(*[xp.PathExists(xp.Label(a)) for a in alternatives])
        if len(alternatives) > 1
        else xp.PathExists(xp.Label(alternatives[0]))
    )
    clashes: list[xp.Qualifier] = []
    for i, first in enumerate(alternatives):
        for second in alternatives[i + 1:]:
            clashes.append(
                xp.And(xp.PathExists(xp.Label(first)), xp.PathExists(xp.Label(second)))
            )
    violation: xp.Qualifier = none_present
    if clashes:
        violation = xp.Or(none_present, xp.or_of(*clashes))
    return xp.Not(
        xp.PathExists(
            xp.Seq(xp.DescOrSelf(), xp.Filter(xp.Label(name), violation))
        )
    )


def _at_most_one(name: str, child: str) -> xp.Qualifier:
    """Guard for optional children: no two ``child`` nodes under one
    ``name`` node.  Expressible without sibling axes only through counting
    tricks; we instead forbid a second occurrence via the sibling-free
    observation that two equal-label children are indistinguishable to the
    downward fragments, so the guard is vacuous there — we emit no
    constraint and document the caveat."""
    del name, child
    return xp.PathExists(xp.Empty())  # trivially true
