"""The DTD graph ``G_D`` (proof of Theorem 4.1).

``G_D`` has the element types as vertices and an edge ``(A, B)`` whenever
``B`` occurs in ``P(A)``.  Because content models cannot denote the empty
language, an edge exists exactly when some conforming ``A`` element can have
a ``B`` child, so graph reachability coincides with "some conforming tree
has a ``B`` descendant below an ``A`` node" (for terminating types).
"""

from __future__ import annotations

from collections import deque
from functools import cached_property

from repro.dtd.model import DTD


class DTDGraph:
    """Reachability and cycle structure of a DTD's dependency graph."""

    def __init__(self, dtd: DTD):
        self.dtd = dtd
        self.edges: dict[str, frozenset[str]] = {
            element_type: dtd.child_types(element_type)
            for element_type in dtd.element_types
        }

    @cached_property
    def reverse_edges(self) -> dict[str, frozenset[str]]:
        reverse: dict[str, set[str]] = {name: set() for name in self.edges}
        for source, targets in self.edges.items():
            for target in targets:
                reverse[target].add(source)
        return {name: frozenset(parents) for name, parents in reverse.items()}

    def children(self, element_type: str) -> frozenset[str]:
        return self.edges[element_type]

    def reachable_from(self, element_type: str, *, proper: bool = False) -> frozenset[str]:
        """Element types reachable from ``element_type``.

        With ``proper=True`` the start vertex is included only if it lies on
        a cycle (i.e. reachable by a non-empty path) — this matches the
        semantics of a strict-descendant step; the paper's ``↓*`` semantics
        (descendant-or-self) always includes the start and is obtained with
        the default ``proper=False``.
        """
        seen: set[str] = set()
        queue = deque(self.edges[element_type])
        while queue:
            current = queue.popleft()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.edges[current] - seen)
        if not proper:
            seen.add(element_type)
        return frozenset(seen)

    @cached_property
    def reachable_from_root(self) -> frozenset[str]:
        return self.reachable_from(self.dtd.root)

    def shortest_path(self, source: str, target: str) -> list[str] | None:
        """A shortest path ``source, ..., target`` in ``G_D`` (vertex list,
        including both endpoints); ``None`` if unreachable.  A zero-length
        path is returned when ``source == target``."""
        if source == target:
            return [source]
        parents: dict[str, str] = {}
        queue = deque([source])
        seen = {source}
        while queue:
            current = queue.popleft()
            for child in self.edges[current]:
                if child in seen:
                    continue
                parents[child] = current
                if child == target:
                    path = [target]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    return list(reversed(path))
                seen.add(child)
                queue.append(child)
        return None

    @cached_property
    def has_cycle(self) -> bool:
        """Whether ``G_D`` has a cycle, i.e. whether the DTD is recursive."""
        in_progress: set[str] = set()
        done: set[str] = set()

        def visit(vertex: str) -> bool:
            in_progress.add(vertex)
            for child in self.edges[vertex]:
                if child in in_progress:
                    return True
                if child not in done and visit(child):
                    return True
            in_progress.discard(vertex)
            done.add(vertex)
            return False

        return any(
            visit(vertex)
            for vertex in self.edges
            if vertex not in done and vertex not in in_progress
        )

    @cached_property
    def longest_acyclic_depth(self) -> int:
        """For nonrecursive DTDs: the maximum number of edges on any path
        from the root, i.e. the maximum document depth minus one.

        Raises ``ValueError`` on recursive DTDs (depth is unbounded).
        """
        if self.has_cycle:
            raise ValueError("recursive DTD has unbounded document depth")
        memo: dict[str, int] = {}

        def depth(vertex: str) -> int:
            if vertex not in memo:
                children = self.edges[vertex]
                memo[vertex] = 0 if not children else 1 + max(depth(c) for c in children)
            return memo[vertex]

        return depth(self.dtd.root)
