"""The DTD model ``D = (Ele, Att, P, R, r)`` (Section 2.1).

* ``Ele`` — the element types: the keys of :attr:`DTD.productions`;
* ``P``  — productions mapping each element type to a content model
  (a :class:`repro.regex.ast.Regex` over element types);
* ``Att``/``R`` — attribute names per element type;
* ``r``  — the distinguished root type.

The paper assumes every element type is *terminating* (some finite tree
rooted at it conforms); :meth:`DTD.check` verifies well-formedness and
:func:`repro.dtd.properties.terminating_types` implements the linear-time
termination analysis.  Deciders call :meth:`DTD.require_terminating` up
front, mirroring the paper's standing assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Mapping

from repro.errors import DTDError
from repro.regex.ast import Regex

# Attribute values in examples/tests; any string is allowed in documents.
AttributeMap = Mapping[str, frozenset[str]]


@dataclass(frozen=True)
class DTD:
    """An immutable DTD.

    Parameters
    ----------
    root:
        The root element type ``r``.
    productions:
        ``P``: content model for every element type.  Every element type of
        the DTD must have an entry (use ``Epsilon()`` for empty elements).
    attributes:
        ``R``: attribute names per element type; element types may be
        omitted (treated as having no attributes).
    """

    root: str
    productions: Mapping[str, Regex]
    attributes: Mapping[str, frozenset[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "productions", dict(self.productions))
        object.__setattr__(
            self,
            "attributes",
            {name: frozenset(attrs) for name, attrs in dict(self.attributes).items()},
        )
        self.check()

    # -- accessors ---------------------------------------------------------
    @property
    def element_types(self) -> frozenset[str]:
        """``Ele``: all element types of the DTD."""
        return frozenset(self.productions)

    def production(self, element_type: str) -> Regex:
        """``P(A)``; raises :class:`DTDError` on unknown types."""
        try:
            return self.productions[element_type]
        except KeyError:
            raise DTDError(f"unknown element type: {element_type}") from None

    def attrs_of(self, element_type: str) -> frozenset[str]:
        """``R(A)`` (empty set when unspecified)."""
        if element_type not in self.productions:
            raise DTDError(f"unknown element type: {element_type}")
        return self.attributes.get(element_type, frozenset())

    @property
    def attribute_names(self) -> frozenset[str]:
        """``Att``: the union of all per-type attribute sets."""
        if not self.attributes:
            return frozenset()
        return frozenset().union(*self.attributes.values())

    def size(self) -> int:
        """``|D|``: total size of the productions plus attribute lists."""
        total = sum(production.size() + 1 for production in self.productions.values())
        total += sum(len(attrs) for attrs in self.attributes.values())
        return total

    # -- well-formedness ----------------------------------------------------
    def check(self) -> None:
        """Validate internal consistency (root defined, closed alphabet)."""
        if self.root not in self.productions:
            raise DTDError(f"root type {self.root!r} has no production")
        known = set(self.productions)
        for element_type, production in self.productions.items():
            undefined = production.alphabet() - known
            if undefined:
                raise DTDError(
                    f"production of {element_type!r} mentions undefined element "
                    f"types: {sorted(undefined)}"
                )
        for element_type in self.attributes:
            if element_type not in known:
                raise DTDError(
                    f"attributes declared for undefined element type {element_type!r}"
                )

    @cached_property
    def _terminating(self) -> frozenset[str]:
        from repro.dtd.properties import terminating_types

        return terminating_types(self)

    def require_terminating(self) -> None:
        """Enforce the paper's standing assumption that all element types
        terminate (Section 2.1); raises :class:`DTDError` otherwise."""
        missing = self.element_types - self._terminating
        if missing:
            raise DTDError(f"non-terminating element types: {sorted(missing)}")

    # -- derived views -------------------------------------------------------
    def child_types(self, element_type: str) -> frozenset[str]:
        """Element types that can occur among the children of ``A``
        (the out-neighbours of ``A`` in the DTD graph).

        Because content models have no empty-language constant, this is
        exactly the alphabet of ``P(A)``.
        """
        return self.production(element_type).alphabet()

    def with_root(self, new_root: str) -> "DTD":
        """The same DTD re-rooted (used by Proposition 3.1's family)."""
        return DTD(root=new_root, productions=self.productions, attributes=self.attributes)

    def restrict(self, keep: Iterable[str]) -> "DTD":
        """Restriction to a subset of element types containing the root and
        closed under the child relation; raises if not closed."""
        keep_set = set(keep)
        productions = {name: self.productions[name] for name in keep_set}
        attributes = {
            name: attrs for name, attrs in self.attributes.items() if name in keep_set
        }
        return DTD(root=self.root, productions=productions, attributes=attributes)

    def describe(self) -> str:
        """Readable multi-line rendering (root first, then alphabetical)."""
        lines = [f"root {self.root}"]
        ordering = [self.root] + sorted(self.element_types - {self.root})
        for name in ordering:
            lines.append(f"{name} -> {self.productions[name]}")
            attrs = self.attrs_of(name)
            if attrs:
                lines.append(f"{name} @ {', '.join(sorted(attrs))}")
        return "\n".join(lines)
