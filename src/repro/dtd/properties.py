"""DTD classification predicates (Sections 2.1 and 6, plus the
real-world classes of arXiv:1308.0769).

* :func:`is_normalized` — productions of the shapes
  ``ε | B1,...,Bn | B1+...+Bn | B*`` (Section 2.1);
* :func:`is_disjunction_free` — no ``+`` anywhere (Section 6.3);
* :func:`is_nonrecursive` — acyclic dependency graph (Section 6.1);
* :func:`is_no_star` — no Kleene star (Proposition 7.3's "no-star" DTDs);
* :func:`is_duplicate_free` / :func:`is_disjunction_capsuled` /
  :func:`is_dc_df_restrained` — the structural classes under which
  Ishihara/Suzuki/Hashimoto (arXiv:1308.0769) prove qualifier and
  parent-axis satisfiability tractable, covering most published
  real-world DTDs (XHTML, DocBook, RSS, ...);
* :func:`terminating_types` — the linear-time termination analysis the paper
  reduces to context-free-grammar emptiness (Section 2.1);
* :func:`max_document_depth` — the depth bound ``|D|`` used by
  Proposition 6.1 and the nonrecursive deciders.
"""

from __future__ import annotations

from collections import deque

from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.regex.ast import Concat, Epsilon, Optional, Regex, Star, Symbol, Union


def is_normalized(dtd: DTD) -> bool:
    """Whether every production has one of the normalized shapes
    ``ε``, ``B1, ..., Bn``, ``B1 + ... + Bn`` or ``B*``."""
    return all(_is_normalized_production(p) for p in dtd.productions.values())


def _is_normalized_production(production: Regex) -> bool:
    if isinstance(production, (Epsilon, Symbol)):
        return True
    if isinstance(production, Concat):
        return all(isinstance(part, Symbol) for part in production.parts)
    if isinstance(production, Union):
        return all(isinstance(part, Symbol) for part in production.parts)
    if isinstance(production, Star):
        return isinstance(production.inner, Symbol)
    return False


def is_disjunction_free(dtd: DTD) -> bool:
    """No production contains disjunction ``+`` (``Union`` or ``Optional``,
    since ``e?`` abbreviates ``e + ε``)."""
    return not any(
        isinstance(node, (Union, Optional))
        for production in dtd.productions.values()
        for node in production.walk()
    )


def is_no_star(dtd: DTD) -> bool:
    """No production contains the Kleene star."""
    return not any(
        isinstance(node, Star)
        for production in dtd.productions.values()
        for node in production.walk()
    )


def is_nonrecursive(dtd: DTD) -> bool:
    """Whether the dependency graph of the DTD is acyclic."""
    return not DTDGraph(dtd).has_cycle


def concat_factors(production: Regex) -> tuple[Regex, ...]:
    """The production as a flat sequence of concatenation factors (a
    non-``Concat`` production is its own single factor)."""
    if isinstance(production, Concat):
        factors: list[Regex] = []
        for part in production.parts:
            factors.extend(concat_factors(part))
        return tuple(factors)
    return (production,)


def is_duplicate_free_production(production: Regex) -> bool:
    """No element name occurs more than once syntactically."""
    seen: set[str] = set()
    for node in production.walk():
        if isinstance(node, Symbol):
            if node.name in seen:
                return False
            seen.add(node.name)
    return True


def is_duplicate_free(dtd: DTD) -> bool:
    """Every production mentions each element name at most once
    (arXiv:1308.0769's *duplicate-free* DTDs — XHTML-trans is ~80% DF)."""
    return all(
        is_duplicate_free_production(p) for p in dtd.productions.values()
    )


def is_disjunction_capsuled_production(production: Regex) -> bool:
    """Every factor of the concatenation is a single symbol, ``ε``, or a
    starred expression — i.e. every disjunction (``+`` or ``?``) sits
    inside a star "capsule"."""
    return all(
        isinstance(factor, (Symbol, Epsilon, Star))
        for factor in concat_factors(production)
    )


def is_disjunction_capsuled(dtd: DTD) -> bool:
    """Every production is a sequence of symbol/``ε``/starred factors
    (arXiv:1308.0769's *disjunction-capsuled* DTDs).  Disjunction-free
    DTDs are a subclass: with no ``+``/``?`` at all, every factor is a
    symbol or a star."""
    return all(
        is_disjunction_capsuled_production(p) for p in dtd.productions.values()
    )


def is_dc_df_restrained(dtd: DTD) -> bool:
    """The covering class: every production is disjunction-capsuled *or*
    duplicate-free (per-production mix).  Subsumes both
    :func:`is_disjunction_capsuled` and :func:`is_duplicate_free`, and is
    the trait gate of the :mod:`repro.sat.realworld` PTIME deciders."""
    return all(
        is_disjunction_capsuled_production(p) or is_duplicate_free_production(p)
        for p in dtd.productions.values()
    )


def terminating_types(dtd: DTD) -> frozenset[str]:
    """Element types ``A`` admitting a finite tree rooted at ``A`` that
    satisfies the DTD.

    The paper reduces this to emptiness of context-free grammars, decidable
    in linear time.  We run a reverse-dependency worklist: every type is
    checked once against the empty terminating set, and is re-checked only
    when an element type its production mentions newly terminates — so the
    total number of Glushkov scans is bounded by the number of
    (production, mentioned-type) edges instead of O(n·passes) restart
    scans.  Acceptance of "some word over a subset S" is tested on the
    Glushkov automaton restricted to S-labelled states.
    """
    dependents: dict[str, set[str]] = {}
    for element_type in dtd.element_types:
        for symbol in dtd.production(element_type).alphabet():
            dependents.setdefault(symbol, set()).add(element_type)

    terminating: set[str] = set()
    queue = deque(sorted(dtd.element_types))
    queued = set(queue)
    while queue:
        element_type = queue.popleft()
        queued.discard(element_type)
        if element_type in terminating:
            continue
        if _accepts_word_over(dtd.production(element_type), terminating):
            terminating.add(element_type)
            for dependent in sorted(dependents.get(element_type, ())):
                if dependent not in terminating and dependent not in queued:
                    queued.add(dependent)
                    queue.append(dependent)
    return frozenset(terminating)


def _accepts_word_over(production: Regex, allowed: set[str]) -> bool:
    """Does the content model accept some word using only ``allowed``
    symbols?  (Nullable models accept the empty word regardless.)"""
    from repro.regex.ops import cached_nfa

    nfa = cached_nfa(production)
    if nfa.nullable:
        return True
    seen: set[int] = set()
    queue = deque([0])
    while queue:
        state = queue.popleft()
        for succ in nfa.successors(state):
            if succ in seen:
                continue
            symbol = nfa.symbols[succ]
            if symbol not in allowed:
                continue
            if nfa.is_accepting(succ):
                return True
            seen.add(succ)
            queue.append(succ)
    return False


def max_document_depth(dtd: DTD) -> int:
    """For a nonrecursive DTD, the maximum depth (number of edges from the
    root to a leaf) of any conforming document; raises ``ValueError`` for
    recursive DTDs."""
    return DTDGraph(dtd).longest_acyclic_depth


def classify(dtd: DTD) -> dict[str, bool]:
    """A summary of all classification predicates: the paper's Section 6
    classes plus the arXiv:1308.0769 real-world classes."""
    return {
        "normalized": is_normalized(dtd),
        "disjunction_free": is_disjunction_free(dtd),
        "nonrecursive": is_nonrecursive(dtd),
        "no_star": is_no_star(dtd),
        "duplicate_free": is_duplicate_free(dtd),
        "disjunction_capsuled": is_disjunction_capsuled(dtd),
        "dc_df_restrained": is_dc_df_restrained(dtd),
        "all_terminating": terminating_types(dtd) == dtd.element_types,
    }
