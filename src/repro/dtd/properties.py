"""DTD classification predicates (Sections 2.1 and 6).

* :func:`is_normalized` — productions of the shapes
  ``ε | B1,...,Bn | B1+...+Bn | B*`` (Section 2.1);
* :func:`is_disjunction_free` — no ``+`` anywhere (Section 6.3);
* :func:`is_nonrecursive` — acyclic dependency graph (Section 6.1);
* :func:`is_no_star` — no Kleene star (Proposition 7.3's "no-star" DTDs);
* :func:`terminating_types` — the linear-time termination analysis the paper
  reduces to context-free-grammar emptiness (Section 2.1);
* :func:`max_document_depth` — the depth bound ``|D|`` used by
  Proposition 6.1 and the nonrecursive deciders.
"""

from __future__ import annotations

from collections import deque

from repro.dtd.graph import DTDGraph
from repro.dtd.model import DTD
from repro.regex.ast import Concat, Epsilon, Optional, Regex, Star, Symbol, Union


def is_normalized(dtd: DTD) -> bool:
    """Whether every production has one of the normalized shapes
    ``ε``, ``B1, ..., Bn``, ``B1 + ... + Bn`` or ``B*``."""
    return all(_is_normalized_production(p) for p in dtd.productions.values())


def _is_normalized_production(production: Regex) -> bool:
    if isinstance(production, (Epsilon, Symbol)):
        return True
    if isinstance(production, Concat):
        return all(isinstance(part, Symbol) for part in production.parts)
    if isinstance(production, Union):
        return all(isinstance(part, Symbol) for part in production.parts)
    if isinstance(production, Star):
        return isinstance(production.inner, Symbol)
    return False


def is_disjunction_free(dtd: DTD) -> bool:
    """No production contains disjunction ``+`` (``Union`` or ``Optional``,
    since ``e?`` abbreviates ``e + ε``)."""
    return not any(
        isinstance(node, (Union, Optional))
        for production in dtd.productions.values()
        for node in production.walk()
    )


def is_no_star(dtd: DTD) -> bool:
    """No production contains the Kleene star."""
    return not any(
        isinstance(node, Star)
        for production in dtd.productions.values()
        for node in production.walk()
    )


def is_nonrecursive(dtd: DTD) -> bool:
    """Whether the dependency graph of the DTD is acyclic."""
    return not DTDGraph(dtd).has_cycle


def terminating_types(dtd: DTD) -> frozenset[str]:
    """Element types ``A`` admitting a finite tree rooted at ``A`` that
    satisfies the DTD.

    The paper reduces this to emptiness of context-free grammars, decidable
    in linear time.  We run the standard worklist fixpoint: ``A`` terminates
    once its content model accepts some word over already-terminating types.
    Acceptance of "some word over a subset S" is tested on the Glushkov
    automaton restricted to S-labelled states.
    """
    terminating: set[str] = set()
    pending = deque(dtd.element_types)
    changed = True
    while changed:
        changed = False
        for element_type in list(pending):
            production = dtd.production(element_type)
            if _accepts_word_over(production, terminating):
                terminating.add(element_type)
                pending.remove(element_type)
                changed = True
    return frozenset(terminating)


def _accepts_word_over(production: Regex, allowed: set[str]) -> bool:
    """Does the content model accept some word using only ``allowed``
    symbols?  (Nullable models accept the empty word regardless.)"""
    from repro.regex.ops import cached_nfa

    nfa = cached_nfa(production)
    if nfa.nullable:
        return True
    seen: set[int] = set()
    queue = deque([0])
    while queue:
        state = queue.popleft()
        for succ in nfa.successors(state):
            if succ in seen:
                continue
            symbol = nfa.symbols[succ]
            if symbol not in allowed:
                continue
            if nfa.is_accepting(succ):
                return True
            seen.add(succ)
            queue.append(succ)
    return False


def max_document_depth(dtd: DTD) -> int:
    """For a nonrecursive DTD, the maximum depth (number of edges from the
    root to a leaf) of any conforming document; raises ``ValueError`` for
    recursive DTDs."""
    return DTDGraph(dtd).longest_acyclic_depth


def classify(dtd: DTD) -> dict[str, bool]:
    """A summary of all Section 6 classification predicates."""
    return {
        "normalized": is_normalized(dtd),
        "disjunction_free": is_disjunction_free(dtd),
        "nonrecursive": is_nonrecursive(dtd),
        "no_star": is_no_star(dtd),
        "all_terminating": terminating_types(dtd) == dtd.element_types,
    }
