"""Textual syntax for DTDs.

The syntax mirrors how the paper writes DTDs:

.. code-block:: text

    # 3SAT encoding DTD (Example 2.1)
    root r
    r  -> X1, X2, X3
    X1 -> T + F
    X2 -> T + F
    X3 -> T + F
    T  -> eps
    F  -> eps

One ``NAME -> content-model`` line per element type, an optional
``NAME @ a, b`` line listing the attributes ``R(NAME)``, a mandatory
``root NAME`` line, and ``#`` comments.  Content models use the syntax of
:mod:`repro.regex.parser` (``,`` concatenation, ``+``/``|`` disjunction,
postfix ``*``/``?``, ``eps``).

:func:`parse_dtd` and :meth:`repro.dtd.model.DTD.describe` round-trip.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.dtd.model import DTD
from repro.regex.ast import Regex
from repro.regex.parser import parse_regex

_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.:-]*$")


def parse_dtd(text: str) -> DTD:
    """Parse the textual DTD syntax into a :class:`DTD`.

    Raises :class:`repro.errors.ParseError` for syntax errors and
    :class:`repro.errors.DTDError` for semantic ones (via ``DTD.check``).
    """
    root: str | None = None
    productions: dict[str, Regex] = {}
    attributes: dict[str, frozenset[str]] = {}

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("root "):
            candidate = line[len("root "):].strip()
            if not _NAME_RE.match(candidate):
                raise ParseError(f"line {line_number}: bad root name {candidate!r}")
            if root is not None:
                raise ParseError(f"line {line_number}: duplicate root declaration")
            root = candidate
            continue
        if "->" in line:
            name, _, body = line.partition("->")
            name = name.strip()
            if not _NAME_RE.match(name):
                raise ParseError(f"line {line_number}: bad element type {name!r}")
            if name in productions:
                raise ParseError(f"line {line_number}: duplicate production for {name!r}")
            productions[name] = parse_regex(body.strip())
            continue
        if "@" in line:
            name, _, body = line.partition("@")
            name = name.strip()
            if not _NAME_RE.match(name):
                raise ParseError(f"line {line_number}: bad element type {name!r}")
            attrs = [attr.strip() for attr in body.split(",") if attr.strip()]
            for attr in attrs:
                if not _NAME_RE.match(attr):
                    raise ParseError(f"line {line_number}: bad attribute name {attr!r}")
            previous = attributes.get(name, frozenset())
            attributes[name] = previous | frozenset(attrs)
            continue
        raise ParseError(f"line {line_number}: cannot parse DTD line {raw_line!r}")

    if root is None:
        raise ParseError("missing 'root NAME' declaration")
    return DTD(root=root, productions=productions, attributes=attributes)
