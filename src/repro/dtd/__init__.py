"""DTDs (Document Type Definitions) as defined in Section 2.1 of the paper.

A DTD is ``(Ele, Att, P, R, r)``: element types, attribute names, one
content-model production per element type, an attribute assignment per
element type, and a root type.  This package provides the model
(:mod:`repro.dtd.model`), a textual syntax (:mod:`repro.dtd.parser`), the
dependency graph (:mod:`repro.dtd.graph`), the classification predicates used
throughout Section 6 (:mod:`repro.dtd.properties`), normalization per
Proposition 3.3 (:mod:`repro.dtd.normalize`), the paper's DTD-to-DTD
reductions (:mod:`repro.dtd.transforms`), and random generation for workloads
(:mod:`repro.dtd.generator`).
"""

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.graph import DTDGraph
from repro.dtd.properties import (
    is_disjunction_free,
    is_no_star,
    is_nonrecursive,
    is_normalized,
    max_document_depth,
    terminating_types,
)
from repro.dtd.normalize import NormalizationResult, normalize
from repro.dtd.transforms import (
    eliminate_disjunction,
    eliminate_recursion_in_query,
    eliminate_star,
    universal_dtds,
)
from repro.dtd.generator import random_dtd

__all__ = [
    "DTD", "parse_dtd", "DTDGraph",
    "is_normalized", "is_disjunction_free", "is_nonrecursive", "is_no_star",
    "terminating_types", "max_document_depth",
    "normalize", "NormalizationResult",
    "universal_dtds", "eliminate_recursion_in_query", "eliminate_star",
    "eliminate_disjunction",
    "random_dtd",
]
