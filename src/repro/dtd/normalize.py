"""Normalization of DTDs and the accompanying query rewriting
(Proposition 3.3).

``normalize(dtd)`` produces a normalized DTD ``N(D)`` whose productions all
have the shapes ``ε | B1,...,Bn | B1+...+Bn | B*``, by introducing a fresh
element type for every internal node of each production's parse tree (the
root of the parse tree keeps the old label).  An ``ε`` alternative inside a
disjunction becomes a fresh empty element type, which keeps the normal form
while preserving the language shape.

``NormalizationResult.rewrite_query`` implements ``f(p)``: the query
rewriting that "skips" the freshly introduced element types, so that
``(p, D)`` is satisfiable iff ``(f(p), N(D))`` is satisfiable.  Following
the paper:

* ``f(A) = ∇/A`` where ``∇`` is the union of ε and all downward chains of
  new element types;
* ``f(↓) = ⋃_{A old} ∇/A`` and ``f(↓*) = ε ∪ ⋃_{A old} ↓*/A``;
* ``f(↑) = Δ/⋃_{A old} ↑[lab()=A]`` realized as the union over inverse new
  chains with label tests (requires ``∪`` and label tests, as stated in the
  proposition);
* ``f(↑*) = ε ∪ ⋃_{A old} ↑*[lab()=A]``;
* homomorphic on ``/``, ``∪``, ``[q]`` and qualifier operators.

Sibling axes are **not** supported (normalization reshuffles sibling
relations); callers must check first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FragmentError
from repro.dtd.model import DTD
from repro.regex import ast as rx
from repro.xpath import ast as xp
from repro.xpath.fragments import Feature, features_of

_SIBLING_FEATURES = {
    Feature.RIGHT_SIB, Feature.LEFT_SIB, Feature.RIGHT_SIB_STAR, Feature.LEFT_SIB_STAR,
}


@dataclass(frozen=True)
class NormalizationResult:
    """Outcome of :func:`normalize`: the normalized DTD, the set of fresh
    element types, and the query rewriting ``f``."""

    dtd: DTD
    new_types: frozenset[str]
    original: DTD

    @property
    def old_types(self) -> frozenset[str]:
        return self.original.element_types

    def rewrite_query(self, query: xp.Path) -> xp.Path:
        """``f(p)`` — see module docstring."""
        used = features_of(query)
        if used & _SIBLING_FEATURES:
            raise FragmentError(
                "Proposition 3.3 rewriting does not apply to sibling axes"
            )
        nabla = self._new_chain_paths()
        return _RewriteContext(self, nabla).rewrite_path(query)

    # -- ∇ and Δ -----------------------------------------------------------
    def _new_chains(self) -> list[tuple[str, ...]]:
        """All downward chains ``N1/.../Nk`` (k ≥ 1) of new element types,
        where each ``N_{i+1}`` occurs in the production of ``N_i``."""
        children_of: dict[str, list[str]] = {}
        for new_type in self.new_types:
            production = self.dtd.production(new_type)
            children_of[new_type] = sorted(
                name for name in production.alphabet() if name in self.new_types
            )
        chains: list[tuple[str, ...]] = []

        def extend(chain: tuple[str, ...]) -> None:
            chains.append(chain)
            for child in children_of[chain[-1]]:
                extend(chain + (child,))

        for new_type in sorted(self.new_types):
            extend((new_type,))
        return chains

    def _new_chain_paths(self) -> list[xp.Path]:
        """The label-step paths of ``∇`` (excluding the ε chain)."""
        return [
            xp.seq_of(*[xp.Label(name) for name in chain])
            for chain in self._new_chains()
        ]


class _RewriteContext:
    def __init__(self, result: NormalizationResult, nabla_chains: list[xp.Path]):
        self.result = result
        self.nabla_chains = nabla_chains
        self.old = sorted(result.old_types)

    def nabla_to(self, tail: xp.Path) -> xp.Path:
        """``∇/tail``: skip zero or more new levels, then take ``tail``."""
        options = [tail]
        options.extend(xp.seq_of(chain, tail) for chain in self.nabla_chains)
        return xp.union_of(*options)

    def rewrite_path(self, path: xp.Path) -> xp.Path:
        if isinstance(path, xp.Empty):
            return path
        if isinstance(path, xp.Label):
            return self.nabla_to(xp.Label(path.name))
        if isinstance(path, xp.Wildcard):
            return self.nabla_to(
                xp.union_of(*[xp.Label(name) for name in self.old])
            )
        if isinstance(path, xp.DescOrSelf):
            lands_old = [
                xp.Seq(xp.DescOrSelf(), xp.Label(name)) for name in self.old
            ]
            return xp.union_of(xp.Empty(), *lands_old)
        if isinstance(path, xp.Parent):
            # climb through complete inverse new chains to the old parent
            options: list[xp.Path] = [
                xp.Filter(xp.Parent(), xp.LabelTest(name)) for name in self.old
            ]
            for chain in self.result._new_chains():
                steps: list[xp.Path] = []
                for name in reversed(chain):
                    steps.append(xp.Filter(xp.Parent(), xp.LabelTest(name)))
                steps.append(xp.Parent())
                options.append(xp.seq_of(*steps))
            return xp.union_of(*options)
        if isinstance(path, xp.AncOrSelf):
            lands_old = [
                xp.Filter(xp.AncOrSelf(), xp.LabelTest(name)) for name in self.old
            ]
            return xp.union_of(xp.Empty(), *lands_old)
        if isinstance(path, xp.Seq):
            return xp.Seq(self.rewrite_path(path.left), self.rewrite_path(path.right))
        if isinstance(path, xp.Union):
            return xp.Union(self.rewrite_path(path.left), self.rewrite_path(path.right))
        if isinstance(path, xp.Filter):
            return xp.Filter(
                self.rewrite_path(path.path), self.rewrite_qualifier(path.qualifier)
            )
        raise FragmentError(f"cannot rewrite path node {path!r}")

    def rewrite_qualifier(self, qualifier: xp.Qualifier) -> xp.Qualifier:
        if isinstance(qualifier, xp.PathExists):
            return xp.PathExists(self.rewrite_path(qualifier.path))
        if isinstance(qualifier, xp.LabelTest):
            return qualifier
        if isinstance(qualifier, xp.AttrConstCmp):
            return xp.AttrConstCmp(
                self.rewrite_path(qualifier.path),
                qualifier.attr,
                qualifier.op,
                qualifier.value,
            )
        if isinstance(qualifier, xp.AttrAttrCmp):
            return xp.AttrAttrCmp(
                self.rewrite_path(qualifier.left_path),
                qualifier.left_attr,
                qualifier.op,
                self.rewrite_path(qualifier.right_path),
                qualifier.right_attr,
            )
        if isinstance(qualifier, xp.And):
            return xp.And(
                self.rewrite_qualifier(qualifier.left),
                self.rewrite_qualifier(qualifier.right),
            )
        if isinstance(qualifier, xp.Or):
            return xp.Or(
                self.rewrite_qualifier(qualifier.left),
                self.rewrite_qualifier(qualifier.right),
            )
        if isinstance(qualifier, xp.Not):
            return xp.Not(self.rewrite_qualifier(qualifier.inner))
        raise FragmentError(f"cannot rewrite qualifier node {qualifier!r}")


def normalize(dtd: DTD) -> NormalizationResult:
    """Compute ``N(D)`` (Proposition 3.3).

    Already-normalized productions are kept verbatim; others get fresh
    element types named ``A:nK`` for the internal parse-tree nodes (and a
    shared empty type ``A:eps`` for ε alternatives inside disjunctions).
    """
    from repro.dtd.properties import _is_normalized_production

    productions: dict[str, rx.Regex] = {}
    new_types: set[str] = set()

    for element_type in sorted(dtd.element_types):
        production = dtd.production(element_type)
        if _is_normalized_production(production):
            productions[element_type] = production
            continue
        counter = [0]

        def fresh(owner: str = element_type) -> str:
            counter[0] += 1
            name = f"{owner}:n{counter[0]}"
            return name

        def label_of(node: rx.Regex) -> str:
            """The element type representing ``node``; creates productions
            for fresh internal types on the fly."""
            if isinstance(node, rx.Symbol):
                return node.name
            if isinstance(node, rx.Epsilon):
                name = f"{element_type}:eps"
                if name not in productions:
                    productions[name] = rx.Epsilon()
                    new_types.add(name)
                return name
            name = fresh()
            new_types.add(name)
            productions[name] = production_of(node)
            return name

        def production_of(node: rx.Regex) -> rx.Regex:
            """The normalized production describing ``node``'s children."""
            if isinstance(node, rx.Concat):
                return rx.Concat(tuple(rx.Symbol(label_of(part)) for part in node.parts))
            if isinstance(node, rx.Union):
                return rx.Union(tuple(rx.Symbol(label_of(part)) for part in node.parts))
            if isinstance(node, rx.Star):
                return rx.Star(rx.Symbol(label_of(node.inner)))
            if isinstance(node, rx.Optional):
                eps_name = label_of(rx.Epsilon())
                return rx.Union((rx.Symbol(label_of(node.inner)), rx.Symbol(eps_name)))
            if isinstance(node, (rx.Symbol, rx.Epsilon)):
                # a bare leaf at production root is already normalized;
                # unreachable here but kept for safety.
                return node
            raise TypeError(f"unknown regex node {node!r}")

        productions[element_type] = production_of(production)

    normalized = DTD(root=dtd.root, productions=productions, attributes=dtd.attributes)
    return NormalizationResult(
        dtd=normalized, new_types=frozenset(new_types), original=dtd
    )
