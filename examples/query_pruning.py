"""The paper's motivating optimization (Section 1): prune query work whose
XPath selector is unsatisfiable against the schema.

A mini query engine runs `for $x in p return count($x)` jobs; the static
analyzer drops every job whose path cannot select anything on *any*
document conforming to the DTD, so the runtime never evaluates them.

Run:  python examples/query_pruning.py
"""

import time

from repro.dtd import parse_dtd
from repro.sat import decide
from repro.xmltree import random_tree
from repro.xpath import parse_query
from repro.xpath.semantics import evaluate

DTD_TEXT = """
root log
log     -> session*
session -> login, action*, logout?
login   -> eps
action  -> view + edit + delete
view    -> eps
edit    -> eps
delete  -> eps
logout  -> eps
session @ user
"""

WORKLOAD = [
    "session/action/view",
    "session[logout]/action",
    "session/login/action",        # unsat: login is empty
    "session/action[view and edit]",  # unsat: one child only
    "**/delete",
    "session[logout and not(logout)]",  # unsat: contradiction
    "session/logout/**",
]


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    queries = [parse_query(text) for text in WORKLOAD]

    print("Static analysis:")
    keep = []
    for text, query in zip(WORKLOAD, queries):
        result = decide(query, dtd)
        verdict = "keep " if result.is_sat else "PRUNE"
        print(f"  [{verdict}] {text}   ({result.method})")
        if result.is_sat:
            keep.append((text, query))
    print(f"\n{len(WORKLOAD) - len(keep)} of {len(WORKLOAD)} jobs pruned statically.\n")

    # Simulate the runtime on sampled documents.
    import random

    rng = random.Random(7)
    documents = [random_tree(dtd, rng, max_nodes=120) for _ in range(50)]

    def run(jobs):
        start = time.perf_counter()
        hits = 0
        for _text, query in jobs:
            for doc in documents:
                hits += len(evaluate(query, doc))
        return hits, time.perf_counter() - start

    all_jobs = list(zip(WORKLOAD, queries))
    hits_all, time_all = run(all_jobs)
    hits_kept, time_kept = run(keep)
    assert hits_all == hits_kept, "pruning must not change any answer"
    print(f"full workload : {hits_all} selected nodes in {time_all * 1000:.1f} ms")
    print(f"pruned workload: {hits_kept} selected nodes in {time_kept * 1000:.1f} ms")
    print(f"speedup        : {time_all / max(time_kept, 1e-9):.2f}x with identical answers")


if __name__ == "__main__":
    main()
