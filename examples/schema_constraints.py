"""XML-Schema-style integrity constraints live in ``X(↓,↓*,∪)`` — the
fragment Theorem 4.1 decides in PTIME.

A schema author declares key/field selectors; the linter flags selectors
that can never select anything under the schema's content models, which
almost always indicates a typo or an outdated path.

Run:  python examples/schema_constraints.py
"""

from repro.dtd import parse_dtd
from repro.sat import sat_downward
from repro.xpath import parse_query
from repro.xpath.fragments import DOWNWARD

DTD_TEXT = """
root university
university -> department*
department -> name, (course + seminar)*
course     -> title, credits
seminar    -> title
name       -> eps
title      -> eps
credits    -> eps
"""

# selector paths as an XML Schema <xs:selector>/<xs:field> would use them
CONSTRAINT_SELECTORS = [
    "department/course",            # fine
    "department/course/title",      # fine
    "**/seminar/title",             # fine
    "department/lecture",           # typo: no such element type
    "department/course/semester",   # outdated: field renamed to credits
    "course/department",            # inverted path
    "department/seminar/credits",   # seminars carry no credits
]


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    print("Constraint selector lint (fragment X(child,dos,union); Theorem 4.1)\n")
    problems = 0
    for text in CONSTRAINT_SELECTORS:
        query = parse_query(text)
        assert DOWNWARD.contains(query)
        result = sat_downward(query, dtd)
        if result.is_sat:
            print(f"  ok      {text}")
        else:
            problems += 1
            print(f"  BROKEN  {text}  (selects nothing on any conforming document)")
    print(f"\n{problems} broken selector(s) out of {len(CONSTRAINT_SELECTORS)}.")
    print("Each check ran the paper's PTIME reach algorithm — safe to put in a linter.")


if __name__ == "__main__":
    main()
