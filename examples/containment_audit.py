"""Containment checking via Proposition 3.2: audit that a security view
exposes no more than the policy allows.

The scenario follows the paper's access-control motivation (Fan et al.):
a hospital publishes a *view query* over patient records; the auditor
checks the view is contained in the *policy query* — on every conforming
document, everything the view selects must be selectable by the policy.

Run:  python examples/containment_audit.py
"""

from repro.containment import contains
from repro.dtd import parse_dtd
from repro.xpath import parse_query

# The schema is deliberately *star-free* (bounded repetitions) so that the
# containment analysis is exact: the non-containment query of Prop 3.2(3)
# uses upward axes + negation, a fragment decided here by exhaustive
# bounded search — which is a proof only when the model space is finite.
DTD_TEXT = """
root hospital
hospital  -> patient, patient?
patient   -> name, record
record    -> diagnosis?, diagnosis?, billing?
name      -> eps
diagnosis -> eps
billing   -> eps
patient   @ id
diagnosis @ code
"""

CASES = [
    # (view, policy, expectation)
    ("patient/record/diagnosis", "patient/record/*", True),
    ("patient/record/*", "patient/record/diagnosis", False),   # leaks billing
    ("patient[record/billing]/name", "patient/name", True),
    ("**/diagnosis", "patient/record/diagnosis", True),
    ("patient/record", "patient[record/billing]/record", False),
]


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    print("Containment audit (view ⊆ policy?)\n")
    for view_text, policy_text, expected in CASES:
        view = parse_query(view_text)
        policy = parse_query(policy_text)
        result = contains(view, policy, dtd)
        status = {True: "contained", False: "LEAK", None: "undecided"}[result.contained]
        print(f"  view   : {view_text}")
        print(f"  policy : {policy_text}")
        print(f"  result : {status}  [{result.method}; {result.reason}]")
        assert result.contained == expected, (view_text, policy_text)
        if result.contained is False and result.counterexample is not None:
            print("  counterexample document:")
            for line in result.counterexample.pretty().splitlines():
                print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
