"""Batch satisfiability audit with the decision engine.

The scenario: a data platform maintains query corpora (saved reports,
integration tests, access-control rules) against several published
schemas, and wants every query re-checked whenever anything changes —
flagging the unsatisfiable ones, which select nothing on any conforming
document and are therefore dead reports or broken rules.

This script builds a JSONL corpus over three schemas, drives it through
the same machinery as ``python -m repro batch`` (schema registry,
canonical-form decision cache, per-fragment routing), re-runs it to show
the warm-cache behavior, and prints the dead queries.

Run:  python examples/batch_audit.py
"""

import os
import random
import tempfile

from repro.engine import BatchEngine, SchemaRegistry, read_jobs_file, write_jobs_file
from repro.workloads import batch_jobs, document_dtd, mid_size_dtd
from repro.xpath import fragments as frag

# A hand-written catalog schema next to two generated ones: every order
# has line items, each item references exactly one product by sku.
CATALOG_DTD = """
root store
store   -> product*, order*
product -> title, price?
order   -> item, item*
item    -> sku, note?
title   -> eps
price   -> eps
sku     -> eps
note    -> eps
product @ sku
"""


def main() -> None:
    registry = SchemaRegistry()
    registry.register("catalog", CATALOG_DTD)
    registry.register("docs", document_dtd(sections=3))
    registry.register("grid", mid_size_dtd(width=4))

    # A corpus of 300 jobs over the three schemas: 40% re-ask earlier
    # questions (half of those as syntactic variants), the cache's food.
    rng = random.Random(7)
    schemas = {name: registry.get(name).dtd for name in registry.names}
    jobs = batch_jobs(
        rng, schemas, n_jobs=300,
        fragments=(frag.DOWNWARD, frag.DOWNWARD_QUAL),
        duplicate_rate=0.4, variant_rate=0.5,
    )

    # Round-trip through JSONL, exactly like the CLI would.
    jobs_path = os.path.join(tempfile.mkdtemp(prefix="batch_audit_"), "jobs.jsonl")
    write_jobs_file(jobs_path, jobs)
    corpus = read_jobs_file(jobs_path)
    print(f"corpus: {len(corpus)} jobs over {registry.names} -> {jobs_path}\n")

    engine = BatchEngine(registry=registry)
    cold = engine.run(corpus)
    print("--- cold run ---")
    print(cold.stats.describe())

    warm = engine.run(corpus)
    print("\n--- warm rerun (same process) ---")
    print(warm.stats.describe())
    saved = cold.stats.decide_calls - warm.stats.decide_calls
    print(f"\nwarm rerun skipped {saved} of {cold.stats.decide_calls} decide() calls")

    dead = sorted(
        {result.query for result in cold.results if result.satisfiable is False}
    )
    print(f"\ndead queries ({len(dead)} distinct select nothing on any document):")
    for query in dead[:10]:
        print(f"  {query}")
    if len(dead) > 10:
        print(f"  ... and {len(dead) - 10} more")


if __name__ == "__main__":
    main()
