"""Quickstart: decide XPath satisfiability under a DTD.

Run:  python examples/quickstart.py
"""

from repro.dtd import parse_dtd
from repro.sat import decide
from repro.xmltree import conforms
from repro.xpath import parse_query
from repro.xpath.semantics import satisfies

# A small product-catalog schema (the paper's Example 2.1/2.3 style).
DTD_TEXT = """
root catalog
catalog  -> product*
product  -> name, (price + quote), review*
name     -> eps
price    -> eps
quote    -> eps
review   -> eps
product  @ sku
review   @ stars
"""


def main() -> None:
    dtd = parse_dtd(DTD_TEXT)
    print("Schema:")
    print(dtd.describe())
    print()

    queries = [
        # satisfiable: a product with a price and a review
        "product[price and review]",
        # satisfiable: some descendant review
        "**/review",
        # unsatisfiable: price and quote are exclusive alternatives
        "product[price and quote]",
        # unsatisfiable: reviews have no children
        "product/review/name",
        # negation: a product without a price (it has a quote instead)
        "product[not(price)]",
    ]

    for text in queries:
        query = parse_query(text)
        result = decide(query, dtd)
        print(f"{text!r}: {result.describe()}")
        if result.is_sat:
            witness = result.witness
            assert witness is not None
            assert conforms(witness, dtd) and satisfies(witness, query)
            print("  witness:")
            for line in witness.pretty().splitlines():
                print(f"    {line}")
        print()


if __name__ == "__main__":
    main()
