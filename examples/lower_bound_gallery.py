"""A gallery of the paper's hardness encodings, executed end to end.

For each lower bound the script builds the encoding from a small source
instance, solves the source problem with an independent solver, and shows
the correspondence on a concrete certificate tree.

Run:  python examples/lower_bound_gallery.py
"""

from repro.reductions import q3sat, threesat, two_register
from repro.sat import sat_exptime_types
from repro.solvers.dpll import cnf, dpll_satisfiable
from repro.solvers.machines import halting_adder, run_machine
from repro.solvers.qbf import QBF, qbf_valid
from repro.xmltree import conforms
from repro.xpath.semantics import satisfies


def show(title: str) -> None:
    print("=" * 72)
    print(title)
    print("=" * 72)


def gallery_3sat() -> None:
    show("NP: 3SAT -> SAT(X(child,qual))  [Proposition 4.2(1), Figure 1]")
    formula = cnf([[1, 2, 3], [-1, -2, 3], [1, -3, 2]])
    print("formula:", formula.describe())
    assignment = dpll_satisfiable(formula)
    print("DPLL   :", "satisfiable" if assignment else "unsatisfiable", assignment)
    encoding = threesat.encode_child_qual(formula)
    print(f"encoding: |query| = {encoding.query.size()}, |DTD| = {encoding.dtd.size()}")
    result = sat_exptime_types(encoding.query, encoding.dtd)
    print("decider :", result.describe())
    assert result.is_sat == (assignment is not None)
    if assignment:
        tree = threesat.witness_child_qual(formula, assignment)
        assert conforms(tree, encoding.dtd) and satisfies(tree, encoding.query)
        print("assignment tree (conforms + satisfies):")
        print(tree.pretty())
    print()


def gallery_q3sat() -> None:
    show("PSPACE: Q3SAT -> SAT(X(child,qual,neg))  [Proposition 5.1, Figure 3]")
    qbf = QBF(("A", "E"), cnf([[1, 2, 2], [-1, -2, -2]], n_vars=2))
    print("QBF    :", qbf.describe())
    print("valid  :", qbf_valid(qbf))
    encoding = q3sat.encode_neg_child(qbf)
    print(f"encoding: |query| = {encoding.query.size()}, |DTD| = {encoding.dtd.size()}")

    def winning_strategy(var: int, assignment: dict) -> bool:
        return not assignment.get(1, False)  # x2 := ¬x1

    tree = q3sat.strategy_tree_5_1(qbf, winning_strategy)
    print("strategy tree satisfies encoding:", satisfies(tree, encoding.query))

    def losing_strategy(var: int, assignment: dict) -> bool:
        return True  # x2 := true regardless

    bad = q3sat.strategy_tree_5_1(qbf, losing_strategy)
    print("losing strategy satisfies encoding:", satisfies(bad, encoding.query))
    print()


def gallery_2rm() -> None:
    show("Undecidable: 2RM halting -> SAT(X(...,=,neg))  [Theorem 5.4, Figure 4]")
    machine = halting_adder(2)
    trace, status = run_machine(machine)
    print(f"machine: {len(machine.instructions)} instructions, run {status} "
          f"in {len(trace)} steps")
    encoding = two_register.encode_machine(machine)
    print(f"encoding: |query| = {encoding.query.size()}, DTD fixed "
          f"(|D| = {encoding.dtd.size()})")
    tree = two_register.run_tree(trace, machine.final)
    print("run tree: ", len(tree), "nodes;",
          "conforms:", conforms(tree, encoding.dtd),
          "satisfies:", satisfies(tree, encoding.query))
    truncated = two_register.run_tree(trace[:-1], machine.final)
    print("truncated run satisfies:", satisfies(truncated, encoding.query))
    print()


def main() -> None:
    gallery_3sat()
    gallery_q3sat()
    gallery_2rm()


if __name__ == "__main__":
    main()
