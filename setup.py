"""Legacy setup shim.

This repository is configured through ``pyproject.toml``; this file exists
only so that ``pip install -e .`` works in offline environments whose
setuptools lacks the ``wheel`` package needed for PEP 660 editable installs.
"""

from setuptools import setup

setup()
